"""The IncEstimate algorithm — paper Algorithm 1.

IncEstimate evaluates facts *incrementally*: at each time point a selection
strategy picks a subset of the unevaluated facts, those facts are
corroborated with the **current** trust values (Equation 5), and the trust
values are then updated to reflect every fact evaluated so far (Equation 8).
Because different facts are evaluated under different trust vectors, each
source effectively carries a multi-value trust score (Definition 1) — the
property that lets the algorithm uncover false facts even when nearly all
statements are affirmative.

The default strategy is the paper's entropy heuristic
:class:`~repro.core.selection.IncEstHeu`; pass
:class:`~repro.core.selection.IncEstPS` to reproduce the naive greedy
comparison, or any custom :class:`~repro.core.selection.SelectionStrategy`.
"""

from __future__ import annotations

import dataclasses

from repro.core.result import CorroborationResult, Corroborator
from repro.core.scoring import DEFAULT_TRUST
from repro.core.selection import IncEstHeu, SelectionStrategy
from repro.model.dataset import Dataset
from repro.model.matrix import FactId, Signature
from repro.obs import NULL_OBS, Obs


@dataclasses.dataclass
class RoundRecord:
    """What happened at one time point of the incremental algorithm."""

    time_point: int
    signature: Signature
    probability: float
    label: bool
    facts: list[FactId]

    @property
    def num_facts(self) -> int:
        return len(self.facts)


class IncEstimate(Corroborator):
    """Incremental corroboration with a multi-value trust score (Alg. 1).

    Args:
        strategy: fact-selection strategy; defaults to a fresh
            :class:`IncEstHeu`.
        default_trust: λ, the initial trust score of every source and the
            trust of sources with no evaluated votes yet.  The paper uses
            0.9 and observes (Section 6.1.1) that any value above 0.5
            yields the same corroboration result.
        default_fact_probability: probability assigned to facts *no source
            voted on*, for which Equation 5 is undefined (its voter set is
            empty).  In a corroboration-from-affirmative-statements task a
            fact with zero affirmative support has no evidence of being
            true, so the default is the complement of the initial trust,
            1 − λ = 0.1 (this is also what reproduces the paper's Figure
            3(b) point at zero inaccurate sources, where most false facts
            receive no votes at all).  Facts with at least one vote are
            never touched by this value.
        engine: run sessions on the array engine (default) or on the
            scalar reference path; results are bit-identical either way
            (see :class:`~repro.core.session.CorroborationSession`).
        trust_prior_strength: strength of a Bayesian prior anchoring each
            source's trust at λ, expressed as a *fraction of the dataset
            size*: the trust update becomes (correct + λ·k) / (total + k)
            with k = trust_prior_strength · |F|.  On the 12-fact motivating
            example k ≈ 0.006, so the paper's exact round-by-round trust
            vectors ({-, 1, 1, 0, 1}, …) are preserved to within 0.01; on a
            37k-fact crawl k ≈ 18, which keeps a source's trust from being
            pinned at 0 or 1 by its first one or two evaluated votes — the
            smooth per-time-point trajectories of the paper's Figure 2(b)
            are unattainable without some such anchoring (the ablation
            bench quantifies this).  Set to 0 for the literal unsmoothed
            update.
        obs: observability bundle (:mod:`repro.obs`) forwarded to every
            session this estimator creates — per-step spans, selection
            metrics and the round-by-round run ledger.  The no-op default
            adds nothing and the results are bit-identical either way;
            also assignable after construction (``estimator.obs = ...``),
            matching the :class:`~repro.core.result.Corroborator` contract.
    """

    def __init__(
        self,
        strategy: SelectionStrategy | None = None,
        default_trust: float = DEFAULT_TRUST,
        default_fact_probability: float | None = None,
        trust_prior_strength: float = 5e-4,
        engine: bool = True,
        obs: Obs = NULL_OBS,
    ) -> None:
        if not 0.0 <= default_trust <= 1.0:
            raise ValueError(f"default_trust must be in [0, 1], got {default_trust}")
        if trust_prior_strength < 0:
            raise ValueError(
                f"trust_prior_strength must be >= 0, got {trust_prior_strength}"
            )
        self.strategy = strategy if strategy is not None else IncEstHeu()
        self.default_trust = default_trust
        self.default_fact_probability = (
            1.0 - default_trust
            if default_fact_probability is None
            else default_fact_probability
        )
        self.trust_prior_strength = trust_prior_strength
        self.engine = engine
        self.obs = obs
        self.name = f"IncEstimate[{self.strategy.name}]"

    def run(self, dataset: Dataset) -> CorroborationResult:
        session = self.session(dataset)
        return session.run_to_completion()

    def session(self, dataset: Dataset):
        """A step-wise :class:`~repro.core.session.CorroborationSession`.

        ``run()`` is equivalent to ``session(dataset).run_to_completion()``;
        use a session directly to drive the algorithm one time point at a
        time and inspect the multi-value trust state in between.
        """
        from repro.core.session import CorroborationSession

        return CorroborationSession(
            dataset=dataset,
            strategy=self.strategy,
            default_trust=self.default_trust,
            default_fact_probability=self.default_fact_probability,
            trust_prior_strength=self.trust_prior_strength,
            method_name=self.name,
            engine=self.engine,
            obs=self.obs,
        )
