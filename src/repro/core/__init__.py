"""Core contribution: the IncEstimate incremental corroboration algorithm."""

from repro.core.entropy import binary_entropy, binary_entropy_array, collective_entropy
from repro.core.explain import Explanation, VoteContribution, explain, explain_source
from repro.core.fact_groups import FactGroup, group_facts, group_probability
from repro.core.incestimate import IncEstimate, RoundRecord
from repro.core.result import CorroborationResult, Corroborator
from repro.core.scoring import (
    DECISION_THRESHOLD,
    DEFAULT_TRUST,
    corroborate,
    decide,
    update_trust,
)
from repro.core.selection import (
    IncEstHeu,
    IncEstPS,
    Selection,
    SelectionContext,
    SelectionItem,
    SelectionStrategy,
)
from repro.core.trust import TrustTrajectory
from repro.core.variants import (
    DependenceAware,
    EntropyGreedy,
    OracleSelection,
    RandomGroups,
)

__all__ = [
    "CorroborationResult",
    "DependenceAware",
    "EntropyGreedy",
    "Explanation",
    "OracleSelection",
    "RandomGroups",
    "VoteContribution",
    "explain",
    "explain_source",
    "Corroborator",
    "DECISION_THRESHOLD",
    "DEFAULT_TRUST",
    "FactGroup",
    "IncEstHeu",
    "IncEstPS",
    "IncEstimate",
    "RoundRecord",
    "Selection",
    "SelectionContext",
    "SelectionItem",
    "SelectionStrategy",
    "TrustTrajectory",
    "binary_entropy",
    "binary_entropy_array",
    "collective_entropy",
    "corroborate",
    "decide",
    "group_facts",
    "group_probability",
    "update_trust",
]
