"""Fact-selection strategies for the incremental algorithm (Section 5.1).

At each time point the incremental algorithm asks a strategy which facts to
evaluate next, given the remaining fact groups and the current trust values:

* :class:`IncEstHeu` — the paper's entropy-driven heuristic (Algorithm 2).
  Groups are split into a positive part P (σ(FG) > 0.5) and a negative part
  N; each part is ranked by the ΔH(F̄) score of Equation 9 (the collective
  entropy change of the *remaining* groups if this group were evaluated) and
  the top group of each part is selected, taking the same number of facts
  n = min(|FG⁺|, |FG⁻|) from both so that neither side dominates the trust
  update.
* :class:`IncEstPS` — the naive greedy comparison strategy of Section 6.1.1:
  always select the group with the highest probability.

The ΔH ranking runs on the pair-level kernel of :mod:`repro.core.deltah`:
only ordered pairs of groups sharing a source carry a non-zero entropy
term, and between time points only the pairs whose inputs moved are
re-scored (see the module doc there and docs/performance.md).  The session
backends and hand-built contexts all route through the same kernel, so the
ranking — including tie-break order — is bit-identical everywhere.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.arrays import SessionArrays
from repro.core.deltah import DeltaHEngine, DeltaHStatic, ScalarDeltaH
from repro.core.entropy import binary_entropy_array
from repro.core.fact_groups import FactGroup, group_probability
from repro.model.matrix import SourceId
from repro.obs import NULL_OBS, Obs


@dataclasses.dataclass
class SelectionContext:
    """Everything a strategy may look at when choosing the next facts.

    Attributes:
        groups: remaining (non-empty) fact groups.
        trust: σi(S), the current trust value per source.
        default_trust: λ — trust of sources with no evaluated votes yet.
        default_fact_probability: probability assigned to facts with no
            votes (the initial σ(F)).
        correct_counts / total_counts: per-source running counters over the
            facts evaluated so far (numerator and denominator of the trust
            values, including any prior pseudo-votes the driver seeds them
            with); strategies use them to *hypothetically* advance the
            trust update without touching real state.
        arrays: the session's array engine, when the driver runs one.  When
            set, ``groups`` is exactly the engine's active groups (in row
            order), the engine's :attr:`~repro.core.arrays.SessionArrays.\
probabilities` are current for this time point, and the ΔH ranking reads
            the cached incidence matrices instead of rebuilding them.
            ``None`` for hand-built contexts and the scalar reference path;
            every strategy must work in both modes.
        dh: the scalar session's :class:`~repro.core.deltah.ScalarDeltaH`
            scorer, when the driver runs the scalar backend.  ``None`` for
            engine sessions (which score through ``arrays``) and hand-built
            contexts (which build a one-shot pair graph).
        obs: the driver's observability bundle (:mod:`repro.obs`); the
            no-op :data:`~repro.obs.NULL_OBS` by default.  Strategies may
            emit spans and metrics through it but must never let it
            influence what they select.
        stats: per-round observability scratch.  Strategies record
            round-level numbers here (``candidates_rescored`` /
            ``candidates_skipped``) when observability is enabled; the
            session attaches them to its ``steps`` span.  Never read by
            selection logic.
    """

    groups: Sequence[FactGroup]
    trust: Mapping[SourceId, float]
    default_trust: float
    default_fact_probability: float
    correct_counts: Mapping[SourceId, float]
    total_counts: Mapping[SourceId, float]
    arrays: SessionArrays | None = None
    dh: ScalarDeltaH | None = None
    obs: Obs = NULL_OBS
    stats: dict = dataclasses.field(default_factory=dict)

    def group_probabilities(self) -> list[float]:
        """σ(FG) for each remaining group under the current trust."""
        return self.group_probabilities_array().tolist()

    def group_probabilities_array(self) -> np.ndarray:
        """:meth:`group_probabilities` as a float ndarray (no copies when
        the array engine is active)."""
        if self.arrays is not None:
            return self.arrays.probabilities[self.arrays.active_rows()]
        return np.array(
            [
                group_probability(
                    g.signature, self.trust, self.default_fact_probability
                )
                for g in self.groups
            ]
        )


@dataclasses.dataclass
class SelectionItem:
    """One selected group: how many facts to take and the label to assign.

    ``label`` is the evaluation outcome the strategy projects for the
    group: positive-part selections are "projected to be valid" (true) and
    negative-part ones "projected to be corrupt" (false) — the Section 5.1
    walkthrough's wording.  ``None`` defers to the Equation 2 threshold
    rule (σ ≥ 0.5 → true); strategies use it when they make no projection
    (IncEstPS, and the one-sided flush).  The distinction only matters for
    groups at σ(FG) = 0.5 exactly, which Algorithm 2 places in the negative
    part while Equation 2 would label true — at the default trust λ every
    (one T vote + one F vote) signature sits precisely there, so the
    resolution is behaviourally significant.
    """

    group: FactGroup
    count: int
    label: bool | None = None


#: A strategy's answer for one time point.
Selection = list[SelectionItem]


class SelectionStrategy(abc.ABC):
    """Interface for time-point fact selection (Algorithm 1 line 3)."""

    name: str = "strategy"

    @abc.abstractmethod
    def select(self, context: SelectionContext) -> Selection:
        """Choose the facts to evaluate at this time point.

        Must request at least one fact whenever ``context.groups`` is
        non-empty; the driver enforces this to guarantee termination.
        """


class IncEstPS(SelectionStrategy):
    """Greedy probability-first selection (Section 6.1.1).

    Selects the entire fact group with the highest current probability.
    The paper uses it to show why a naive strategy fails: high-probability
    groups evaluate to true, which keeps every trust value at 1 until only
    F-vote groups remain.
    """

    name = "IncEstPS"

    def select(self, context: SelectionContext) -> Selection:
        if not context.groups:
            return []
        probabilities = context.group_probabilities_array()
        best = int(np.argmax(probabilities))
        group = context.groups[best]
        context.obs.metrics.inc("selection.greedy_rounds")
        return [SelectionItem(group, group.size)]


class IncEstHeu(SelectionStrategy):
    """Entropy-driven balanced selection (Algorithm 2).

    The ranking score of a candidate group is

        score(FG) = ΔH_cross(FG) − own_entropy_weight · H(FG)

    where ΔH_cross is Equation 9's sum of entropy changes over the *other*
    remaining groups, and H(FG) is the group's own collective entropy.
    With ``own_entropy_weight = 1`` the score equals the change of the total
    remaining entropy H(F̄i+1) − H(F̄i) — the paper's *stated* objective
    ("we model the fact selection problem as a problem to maximize the
    collective entropy H(F̄i) of unknown facts", Section 5.1), which is what
    penalises selecting ambiguous (σ ≈ 0.5) groups whose labels would be
    coin flips.  With ``own_entropy_weight = 0`` the score is Equation 9
    exactly as printed; on large affirmative-dominated datasets that
    variant degenerates (it favours minimal-impact ambiguous singletons
    whose wrong labels pin barely-observed sources at trust 0/1 — see the
    ablation bench), so the objective-consistent form is the default.

    Args:
        flush_when_one_sided: the Section 5.1 "special case" — when every
            remaining group falls on one side of 0.5 the outcome of the
            remaining facts is settled, so all of them are evaluated in a
            single final time point.  Disable to instead keep consuming one
            top-scoring group per time point (useful for trajectory
            ablations).
        own_entropy_weight: weight of the selected group's own entropy in
            the ranking score (see above).
        projection_smoothing: pseudo-vote count k of the *hypothetical*
            trust update used for ranking: the projected trust of a source
            is (correct + λ·k + Δcorrect) / (total + k + Δtotal).  Early in
            the run real vote totals are tiny, so the unsmoothed projection
            jumps to 0/1 for any touched source and the ΔH ranking becomes
            noise; a small k keeps projections anchored at the default
            trust λ until real evidence accumulates.  The *actual* trust
            update of the driver stays unsmoothed, exactly as in the
            paper's worked example.
        incremental: reuse cached pair terms between time points on the
            array-engine backend (the default).  Disable to force a full
            rescan every round — bit-identical by construction, kept as
            the differential-test reference and escape hatch.
    """

    name = "IncEstHeu"

    def __init__(
        self,
        flush_when_one_sided: bool = True,
        own_entropy_weight: float = 1.0,
        projection_smoothing: float = 0.0,
        incremental: bool = True,
    ) -> None:
        if own_entropy_weight < 0:
            raise ValueError(
                f"own_entropy_weight must be >= 0, got {own_entropy_weight}"
            )
        if projection_smoothing < 0:
            raise ValueError(
                f"projection_smoothing must be >= 0, got {projection_smoothing}"
            )
        self.flush_when_one_sided = flush_when_one_sided
        self.own_entropy_weight = own_entropy_weight
        self.projection_smoothing = projection_smoothing
        self.incremental = incremental

    def select(self, context: SelectionContext) -> Selection:
        groups = list(context.groups)
        if not groups:
            return []
        context.obs.metrics.observe("selection.groups_per_round", len(groups))
        probabilities = context.group_probabilities_array()
        positive_mask = probabilities > 0.5
        positive = np.flatnonzero(positive_mask)
        negative = np.flatnonzero(~positive_mask)

        # Per-side winner = highest score, lowest index on ties — which is
        # exactly np.argmax's first-maximum rule over the side's subarray.
        def side_best(side: np.ndarray, scores: np.ndarray) -> int:
            return int(side[np.argmax(scores[side])])

        # When a side has a single member the argmax over it is forced, so
        # the ΔH ranking (the expensive part) is skipped entirely; the
        # selection is identical because the scores are only ever consumed
        # through per-side maxima.
        if len(positive) == 0 or len(negative) == 0:
            if self.flush_when_one_sided:
                context.obs.metrics.inc("selection.flush_rounds")
                return [SelectionItem(g, g.size) for g in groups]
            side = positive if len(positive) else negative
            if len(side) == 1:
                best = int(side[0])
            else:
                best = side_best(side, self._scores(context, probabilities))
            return [SelectionItem(groups[best], groups[best].size)]

        if len(positive) == 1 and len(negative) == 1:
            best_pos, best_neg = int(positive[0]), int(negative[0])
        else:
            scores = self._scores(context, probabilities)
            best_pos = side_best(positive, scores)
            best_neg = side_best(negative, scores)
        n = min(groups[best_pos].size, groups[best_neg].size)
        return [
            SelectionItem(groups[best_pos], n, label=True),
            SelectionItem(groups[best_neg], n, label=False),
        ]

    def _scores(
        self, context: SelectionContext, probabilities: np.ndarray
    ) -> np.ndarray:
        obs = context.obs
        obs.metrics.inc("selection.delta_h_rounds")
        obs.metrics.inc("selection.delta_h_groups_scored", len(probabilities))
        with obs.tracer.span(
            "selection.delta_h", groups=len(probabilities)
        ) as span:
            cross = _delta_h_scores(
                context,
                probabilities,
                smoothing=self.projection_smoothing,
                force_full=not self.incremental,
            )
            stats = context.stats
            if "candidates_rescored" in stats:
                obs.metrics.inc(
                    "selection.candidates_rescored",
                    stats["candidates_rescored"],
                )
                obs.metrics.inc(
                    "selection.candidates_skipped",
                    stats["candidates_skipped"],
                )
                span.add(
                    candidates_rescored=stats["candidates_rescored"],
                    candidates_skipped=stats["candidates_skipped"],
                )
        if self.own_entropy_weight == 0.0:
            return cross
        if context.arrays is not None:
            arrays = context.arrays
            sizes = arrays.sizes[arrays.active_rows()]
        else:
            sizes = np.array([g.size for g in context.groups], dtype=float)
        own = binary_entropy_array(probabilities) * sizes
        return cross - self.own_entropy_weight * own


def _delta_h_scores(
    context: SelectionContext,
    probabilities: np.ndarray,
    smoothing: float = 0.0,
    force_full: bool = False,
) -> np.ndarray:
    """ΔH(F̄)_FG of Equation 9 for every remaining group.

    For each candidate group FG: hypothetically evaluate *all* its facts
    under the current trust (rounding the shared probability to a label),
    fold them into the per-source agreement counters (optionally anchored
    by ``smoothing`` pseudo-votes at the default trust), derive the
    hypothetical trust vector σi+1(S), and sum the resulting entropy change
    over every other remaining group (group entropy = group size × H(σ)).

    All three context flavours route through the pair-level kernel of
    :mod:`repro.core.deltah`: the array engine scores incrementally against
    its session-lifetime pair cache (unless ``force_full``), the scalar
    session scores through its matrix-shared :class:`ScalarDeltaH`, and
    hand-built contexts build a one-shot pair graph.  One kernel, one
    reduction layout — the results are bit-identical across all of them.
    """
    groups = context.groups
    arrays = context.arrays
    collect = context.obs.metrics.enabled or context.obs.tracer.enabled
    if arrays is not None:
        engine = arrays.dh_engine()
        delta = engine.cross_scores(
            correct=arrays.correct,
            total=arrays.total,
            sizes=arrays.sizes,
            active=arrays.active,
            probabilities=arrays.probabilities,
            default_trust=context.default_trust,
            default_fact_probability=context.default_fact_probability,
            smoothing=smoothing,
            full=force_full,
            collect_stats=collect,
        )
        if collect:
            context.stats["candidates_rescored"] = engine.last_rescored
            context.stats["candidates_skipped"] = engine.last_skipped
        return delta[arrays.active_rows()]
    if collect:
        context.stats["candidates_rescored"] = len(groups)
        context.stats["candidates_skipped"] = 0
    if context.dh is not None:
        return context.dh.scores(
            groups=groups,
            probabilities=probabilities,
            correct_counts=context.correct_counts,
            total_counts=context.total_counts,
            default_trust=context.default_trust,
            default_fact_probability=context.default_fact_probability,
            smoothing=smoothing,
        )
    sources = list(context.trust)
    static = DeltaHStatic.build(list(groups), sources)
    engine = DeltaHEngine(static)
    correct = np.array(
        [context.correct_counts.get(s, 0) for s in sources], dtype=float
    )
    total = np.array(
        [context.total_counts.get(s, 0) for s in sources], dtype=float
    )
    sizes = np.array([g.size for g in groups], dtype=float)
    return engine.cross_scores(
        correct=correct,
        total=total,
        sizes=sizes,
        active=np.ones(len(groups), dtype=bool),
        probabilities=np.asarray(probabilities, dtype=float),
        default_trust=context.default_trust,
        default_fact_probability=context.default_fact_probability,
        smoothing=smoothing,
        full=True,
    )
