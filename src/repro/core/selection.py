"""Fact-selection strategies for the incremental algorithm (Section 5.1).

At each time point the incremental algorithm asks a strategy which facts to
evaluate next, given the remaining fact groups and the current trust values:

* :class:`IncEstHeu` — the paper's entropy-driven heuristic (Algorithm 2).
  Groups are split into a positive part P (σ(FG) > 0.5) and a negative part
  N; each part is ranked by the ΔH(F̄) score of Equation 9 (the collective
  entropy change of the *remaining* groups if this group were evaluated) and
  the top group of each part is selected, taking the same number of facts
  n = min(|FG⁺|, |FG⁻|) from both so that neither side dominates the trust
  update.
* :class:`IncEstPS` — the naive greedy comparison strategy of Section 6.1.1:
  always select the group with the highest probability.

The ΔH ranking is vectorised: with G remaining groups and |S| sources it
costs O(G²·|S|) numpy flops per time point, evaluated in row chunks so the
intermediate G×G probability matrix never exceeds a fixed memory budget.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.arrays import SessionArrays
from repro.core.entropy import binary_entropy_array
from repro.core.fact_groups import FactGroup, group_probability
from repro.model.matrix import SourceId
from repro.model.votes import Vote
from repro.obs import NULL_OBS, Obs

#: Maximum number of candidate-group rows per ΔH chunk; bounds the peak
#: size of the hypothetical-probability matrix at CHUNK × G floats.
_DELTA_H_CHUNK = 512


@dataclasses.dataclass
class SelectionContext:
    """Everything a strategy may look at when choosing the next facts.

    Attributes:
        groups: remaining (non-empty) fact groups.
        trust: σi(S), the current trust value per source.
        default_trust: λ — trust of sources with no evaluated votes yet.
        default_fact_probability: probability assigned to facts with no
            votes (the initial σ(F)).
        correct_counts / total_counts: per-source running counters over the
            facts evaluated so far (numerator and denominator of the trust
            values, including any prior pseudo-votes the driver seeds them
            with); strategies use them to *hypothetically* advance the
            trust update without touching real state.
        arrays: the session's array engine, when the driver runs one.  When
            set, ``groups`` is exactly the engine's active groups (in row
            order), the engine's :attr:`~repro.core.arrays.SessionArrays.\
probabilities` are current for this time point, and the ΔH ranking reads
            the cached incidence matrices instead of rebuilding them.
            ``None`` for hand-built contexts and the scalar reference path;
            every strategy must work in both modes.
        obs: the driver's observability bundle (:mod:`repro.obs`); the
            no-op :data:`~repro.obs.NULL_OBS` by default.  Strategies may
            emit spans and metrics through it but must never let it
            influence what they select.
    """

    groups: Sequence[FactGroup]
    trust: Mapping[SourceId, float]
    default_trust: float
    default_fact_probability: float
    correct_counts: Mapping[SourceId, float]
    total_counts: Mapping[SourceId, float]
    arrays: SessionArrays | None = None
    obs: Obs = NULL_OBS

    def group_probabilities(self) -> list[float]:
        """σ(FG) for each remaining group under the current trust."""
        return self.group_probabilities_array().tolist()

    def group_probabilities_array(self) -> np.ndarray:
        """:meth:`group_probabilities` as a float ndarray (no copies when
        the array engine is active)."""
        if self.arrays is not None:
            return self.arrays.probabilities[self.arrays.active_rows()]
        return np.array(
            [
                group_probability(
                    g.signature, self.trust, self.default_fact_probability
                )
                for g in self.groups
            ]
        )


@dataclasses.dataclass
class SelectionItem:
    """One selected group: how many facts to take and the label to assign.

    ``label`` is the evaluation outcome the strategy projects for the
    group: positive-part selections are "projected to be valid" (true) and
    negative-part ones "projected to be corrupt" (false) — the Section 5.1
    walkthrough's wording.  ``None`` defers to the Equation 2 threshold
    rule (σ ≥ 0.5 → true); strategies use it when they make no projection
    (IncEstPS, and the one-sided flush).  The distinction only matters for
    groups at σ(FG) = 0.5 exactly, which Algorithm 2 places in the negative
    part while Equation 2 would label true — at the default trust λ every
    (one T vote + one F vote) signature sits precisely there, so the
    resolution is behaviourally significant.
    """

    group: FactGroup
    count: int
    label: bool | None = None


#: A strategy's answer for one time point.
Selection = list[SelectionItem]


class SelectionStrategy(abc.ABC):
    """Interface for time-point fact selection (Algorithm 1 line 3)."""

    name: str = "strategy"

    @abc.abstractmethod
    def select(self, context: SelectionContext) -> Selection:
        """Choose the facts to evaluate at this time point.

        Must request at least one fact whenever ``context.groups`` is
        non-empty; the driver enforces this to guarantee termination.
        """


class IncEstPS(SelectionStrategy):
    """Greedy probability-first selection (Section 6.1.1).

    Selects the entire fact group with the highest current probability.
    The paper uses it to show why a naive strategy fails: high-probability
    groups evaluate to true, which keeps every trust value at 1 until only
    F-vote groups remain.
    """

    name = "IncEstPS"

    def select(self, context: SelectionContext) -> Selection:
        if not context.groups:
            return []
        probabilities = context.group_probabilities_array()
        best = int(np.argmax(probabilities))
        group = context.groups[best]
        context.obs.metrics.inc("selection.greedy_rounds")
        return [SelectionItem(group, group.size)]


class IncEstHeu(SelectionStrategy):
    """Entropy-driven balanced selection (Algorithm 2).

    The ranking score of a candidate group is

        score(FG) = ΔH_cross(FG) − own_entropy_weight · H(FG)

    where ΔH_cross is Equation 9's sum of entropy changes over the *other*
    remaining groups, and H(FG) is the group's own collective entropy.
    With ``own_entropy_weight = 1`` the score equals the change of the total
    remaining entropy H(F̄i+1) − H(F̄i) — the paper's *stated* objective
    ("we model the fact selection problem as a problem to maximize the
    collective entropy H(F̄i) of unknown facts", Section 5.1), which is what
    penalises selecting ambiguous (σ ≈ 0.5) groups whose labels would be
    coin flips.  With ``own_entropy_weight = 0`` the score is Equation 9
    exactly as printed; on large affirmative-dominated datasets that
    variant degenerates (it favours minimal-impact ambiguous singletons
    whose wrong labels pin barely-observed sources at trust 0/1 — see the
    ablation bench), so the objective-consistent form is the default.

    Args:
        flush_when_one_sided: the Section 5.1 "special case" — when every
            remaining group falls on one side of 0.5 the outcome of the
            remaining facts is settled, so all of them are evaluated in a
            single final time point.  Disable to instead keep consuming one
            top-scoring group per time point (useful for trajectory
            ablations).
        own_entropy_weight: weight of the selected group's own entropy in
            the ranking score (see above).
        projection_smoothing: pseudo-vote count k of the *hypothetical*
            trust update used for ranking: the projected trust of a source
            is (correct + λ·k + Δcorrect) / (total + k + Δtotal).  Early in
            the run real vote totals are tiny, so the unsmoothed projection
            jumps to 0/1 for any touched source and the ΔH ranking becomes
            noise; a small k keeps projections anchored at the default
            trust λ until real evidence accumulates.  The *actual* trust
            update of the driver stays unsmoothed, exactly as in the
            paper's worked example.
    """

    name = "IncEstHeu"

    def __init__(
        self,
        flush_when_one_sided: bool = True,
        own_entropy_weight: float = 1.0,
        projection_smoothing: float = 0.0,
    ) -> None:
        if own_entropy_weight < 0:
            raise ValueError(
                f"own_entropy_weight must be >= 0, got {own_entropy_weight}"
            )
        if projection_smoothing < 0:
            raise ValueError(
                f"projection_smoothing must be >= 0, got {projection_smoothing}"
            )
        self.flush_when_one_sided = flush_when_one_sided
        self.own_entropy_weight = own_entropy_weight
        self.projection_smoothing = projection_smoothing

    def select(self, context: SelectionContext) -> Selection:
        groups = list(context.groups)
        if not groups:
            return []
        context.obs.metrics.observe("selection.groups_per_round", len(groups))
        probabilities = context.group_probabilities_array()
        positive_mask = probabilities > 0.5
        positive = np.flatnonzero(positive_mask)
        negative = np.flatnonzero(~positive_mask)

        # Per-side winner = highest score, lowest index on ties — which is
        # exactly np.argmax's first-maximum rule over the side's subarray.
        def side_best(side: np.ndarray, scores: np.ndarray) -> int:
            return int(side[np.argmax(scores[side])])

        # When a side has a single member the argmax over it is forced, so
        # the ΔH ranking (the expensive part) is skipped entirely; the
        # selection is identical because the scores are only ever consumed
        # through per-side maxima.
        if len(positive) == 0 or len(negative) == 0:
            if self.flush_when_one_sided:
                context.obs.metrics.inc("selection.flush_rounds")
                return [SelectionItem(g, g.size) for g in groups]
            side = positive if len(positive) else negative
            if len(side) == 1:
                best = int(side[0])
            else:
                best = side_best(side, self._scores(context, probabilities))
            return [SelectionItem(groups[best], groups[best].size)]

        if len(positive) == 1 and len(negative) == 1:
            best_pos, best_neg = int(positive[0]), int(negative[0])
        else:
            scores = self._scores(context, probabilities)
            best_pos = side_best(positive, scores)
            best_neg = side_best(negative, scores)
        n = min(groups[best_pos].size, groups[best_neg].size)
        return [
            SelectionItem(groups[best_pos], n, label=True),
            SelectionItem(groups[best_neg], n, label=False),
        ]

    def _scores(
        self, context: SelectionContext, probabilities: np.ndarray
    ) -> np.ndarray:
        obs = context.obs
        obs.metrics.inc("selection.delta_h_rounds")
        obs.metrics.inc("selection.delta_h_groups_scored", len(probabilities))
        with obs.tracer.span("selection.delta_h", groups=len(probabilities)):
            cross = _delta_h_scores(
                context, probabilities, smoothing=self.projection_smoothing
            )
        if self.own_entropy_weight == 0.0:
            return cross
        if context.arrays is not None:
            sizes = context.arrays.dh_slices().sizes
        else:
            sizes = np.array([g.size for g in context.groups], dtype=float)
        own = binary_entropy_array(probabilities) * sizes
        return cross - self.own_entropy_weight * own


def _delta_h_scores(
    context: SelectionContext,
    probabilities: np.ndarray,
    smoothing: float = 0.0,
) -> np.ndarray:
    """ΔH(F̄)_FG of Equation 9 for every remaining group.

    For each candidate group FG: hypothetically evaluate *all* its facts
    under the current trust (rounding the shared probability to a label),
    fold them into the per-source agreement counters (optionally anchored
    by ``smoothing`` pseudo-votes at the default trust), derive the
    hypothetical trust vector σi+1(S), and sum the resulting entropy change
    over every other remaining group (group entropy = group size × H(σ)).
    """
    groups = context.groups
    arrays = context.arrays
    if arrays is not None:
        # Engine path: read the cached active-row slices of the
        # session-lifetime incidence matrices instead of rebuilding them
        # from signatures.  The slices hold the same float values the
        # scalar construction below would produce, so everything
        # downstream is bit-identical.
        slices = arrays.dh_slices()
        affirm = slices.affirm
        deny = slices.deny
        degree = slices.degree
        degree_pos = slices.degree_pos
        sizes = slices.sizes
        affirm_sized = slices.affirm_sized
        deny_sized = slices.deny_sized
        voted_sized = slices.voted_sized
        correct = arrays.correct
        total = arrays.total
        n_groups = len(sizes)
    else:
        sources = list(context.trust)
        source_index = {s: i for i, s in enumerate(sources)}
        n_groups = len(groups)
        n_sources = len(sources)

        # Vote-incidence matrices: affirm[g, s] / deny[g, s].
        affirm = np.zeros((n_groups, n_sources))
        deny = np.zeros((n_groups, n_sources))
        for gi, group in enumerate(groups):
            for source, symbol in group.signature:
                if symbol == Vote.TRUE.value:
                    affirm[gi, source_index[source]] = 1.0
                else:
                    deny[gi, source_index[source]] = 1.0
        voted = affirm + deny
        degree = voted.sum(axis=1)
        degree_pos = degree > 0
        sizes = np.array([g.size for g in groups], dtype=float)
        # Size-scaled incidences (incidence × group size): the per-source
        # counter deltas of evaluating a whole group.
        affirm_sized = affirm * sizes[:, None]
        deny_sized = deny * sizes[:, None]
        voted_sized = voted * sizes[:, None]
        correct = np.array(
            [context.correct_counts.get(s, 0) for s in sources], dtype=float
        )
        total = np.array(
            [context.total_counts.get(s, 0) for s in sources], dtype=float
        )
    # Part-consistent hypothesis: a candidate from the positive part
    # (σ > 0.5) is projected true, anything else (including σ = 0.5
    # exactly) is projected false — matching SelectionItem labels.
    labels = probabilities > 0.5

    if smoothing > 0:
        correct = correct + context.default_trust * smoothing
        total = total + smoothing

    with np.errstate(divide="ignore", invalid="ignore"):
        # Baseline entropies are computed in the same (smoothed) projection
        # space as the hypotheticals, so a no-op candidate scores exactly 0.
        base_trust = np.where(total > 0, correct / total, context.default_trust)
        base_numerator = affirm @ base_trust + deny @ (1.0 - base_trust)
        base_prob = base_numerator / degree
        base_prob = np.where(degree_pos, base_prob, context.default_fact_probability)
        entropy_now = binary_entropy_array(base_prob) * sizes
        sum_entropy_now = entropy_now.sum()

        delta = np.empty(n_groups)
        for start in range(0, n_groups, _DELTA_H_CHUNK):
            stop = min(start + _DELTA_H_CHUNK, n_groups)
            rows = slice(start, stop)
            # Hypothetical per-source counters after evaluating each
            # candidate.
            hyp_total = total[None, :] + voted_sized[rows]
            hyp_correct = correct[None, :] + np.where(
                labels[rows, None], affirm_sized[rows], deny_sized[rows]
            )
            hyp_trust = hyp_correct / hyp_total
            hyp_trust = np.where(hyp_total > 0, hyp_trust, context.default_trust)

            # Probabilities of every group under each candidate's
            # hypothetical trust: new_prob[c, h] for candidate c (row) and
            # group h (column).
            numerator = hyp_trust @ affirm.T + (1.0 - hyp_trust) @ deny.T
            new_prob = numerator / degree[None, :]
            new_prob = np.where(
                degree_pos[None, :], new_prob, context.default_fact_probability
            )
            new_entropy = binary_entropy_array(new_prob) * sizes[None, :]
            # Σ over FG' ≠ FG of (H_new − H_now): exclude the candidate's
            # own column from both sums.
            candidate_cols = np.arange(start, stop)
            own_new = new_entropy[np.arange(stop - start), candidate_cols]
            own_now = entropy_now[candidate_cols]
            delta[rows] = (
                new_entropy.sum(axis=1) - own_new - (sum_entropy_now - own_now)
            )
    return delta
