"""Incremental pair-level ΔH scoring (Equation 9) — the selection kernel.

The ΔH ranking of :class:`~repro.core.selection.IncEstHeu` asks, for every
remaining candidate group FG: *if this group were evaluated, how would the
collective entropy of the other remaining groups change?*  The previous
kernel answered with a dense rescan — an O(G²·|S|) matrix product per time
point — even though a candidate can only move a group's probability when
the two share at least one voting source.  This module exploits that
sparsity and makes the rescan incremental:

* :class:`DeltaHStatic` — the immutable *pair graph* of a grouping: one
  entry per ordered pair of groups sharing ≥ 1 source, plus one
  *shared-vote* record per (pair, shared source).  Built once per vote
  matrix and cached on it, like the other derived structures.
* :class:`DeltaHEngine` — the mutable scorer.  It keeps a per-pair cache of
  the cross-entropy terms and, between time points, recomputes only the
  pairs whose inputs could have changed: pairs whose non-candidate side
  voted a *touched* source (its trust moved), plus pairs whose candidate
  side was evaluated or flipped its projected label.  Everything else is
  served from the cache.
* :class:`ScalarDeltaH` — the scalar reference backend's wrapper: the same
  static structures and the same engine, permanently in full-rescan mode.

Why a pair formulation is exact.  For candidate c and group h the
hypothetical probability is ``p_ch = (num_h + corr_ch) / degree_h`` where
``num_h`` is h's Equation 5 numerator under the (smoothed) base trust and
``corr_ch = Σ_s sign_h(s) · (hyp_trust_c(s) − base_trust(s))`` sums over
the *shared* sources only — for every other source the hypothetical trust
equals the base trust bit-for-bit (adding a zero count changes nothing), so
non-sharing pairs contribute an exact 0.0 and never need storing.

Bit-exactness contract.  Incremental and full-rescan scoring are
bit-identical, on both backends, because every cached value is only reused
while *all* of its inputs are bitwise unchanged:

* ``corr`` depends on the shared sources' counters, the candidate's label
  and its remaining size — the engine recomputes it when a shared source
  was touched, the candidate was evaluated, or its label actually flipped
  (labels are compared, not approximated by a neighbourhood rule);
* the per-pair term additionally depends on ``num_h`` / ``entropy_now_h``,
  which change exactly when a voter of h was touched — the engine dirties
  all pairs whose non-candidate side voted a touched source;
* reductions with data-dependent extents (the per-pair ``corr`` fold) run
  through ``np.add.reduceat`` — a strictly sequential accumulation in
  entry order within each segment — and the per-candidate reduction runs
  through ``np.add.reduceat`` over segments of the *shared* static pair
  layout, so scalar and engine backends reduce identical values over
  identical segment shapes.

Evaluated-out groups: when a group leaves the remaining set its terms are
zeroed on the non-candidate side (it no longer belongs to Equation 9's
sum) and excluded from recomputation; on the candidate side its
hypothetical deltas become exact zeros (its remaining size is 0), so stale
candidate rows decay to zero scores and are sliced away by the caller.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.entropy import binary_entropy_array
from repro.core.fact_groups import FactGroup
from repro.model.matrix import SourceId, VoteMatrix
from repro.model.votes import Vote
from repro.obs.metrics import global_metrics

_METRICS = global_metrics()

#: Key of the cached :class:`DeltaHStatic` in a matrix's derived cache.
_STATIC_KEY = "deltah_static"


def _gather_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[k], starts[k] + counts[k])`` for all k."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    cum = np.cumsum(counts)
    out = np.arange(total, dtype=np.intp)
    out += np.repeat(starts - (cum - counts), counts)
    return out


@dataclasses.dataclass
class DeltaHStatic:
    """Immutable pair-graph structures of one grouping (see module doc).

    All arrays are index-aligned three ways: per *vote* (one entry per
    (group, source) pair, in two orders), per *pair* (ordered group pairs
    sharing ≥ 1 source, sorted by (candidate, other)), and per
    *shared-vote* entry (one per (pair, shared source), sorted by
    (candidate, other, source)).
    """

    n_groups: int
    n_sources: int
    max_degree: int
    degree: np.ndarray  #: (G,) float voter count per group.

    # Per-vote flats in sorted-signature (slot) order — the Equation 5
    # fold layout, identical to the session engine's template.
    sig_rows: np.ndarray
    sig_cols: np.ndarray
    sig_src: np.ndarray
    sig_is_true: np.ndarray
    row_src_indptr: np.ndarray  #: (G+1,) CSR over sig_* by group row.

    # Per-vote flats re-sorted by (source, row) — the hypothetical-delta
    # layout the shared-vote entries index into.
    v_row: np.ndarray
    v_src: np.ndarray
    v_is_true: np.ndarray
    src_vote_indptr: np.ndarray  #: (S+1,) CSR over v_* by source.

    # Pair graph, sorted by (candidate, other).
    pair_cand: np.ndarray  #: (P,)
    pair_other: np.ndarray  #: (P,)
    cand_indptr: np.ndarray  #: (G+1,) CSR over pairs by candidate.
    other_order: np.ndarray  #: (P,) pair ids grouped by `other`.
    other_indptr: np.ndarray  #: (G+1,) CSR into other_order.

    # Shared-vote entries, sorted by (candidate, other, source).
    sv_hyp: np.ndarray  #: (E,) index into v_* of the (candidate, source) vote.
    sv_sign: np.ndarray  #: (E,) +1.0 if `other` affirms the source, else −1.0.
    sv_indptr: np.ndarray  #: (P+1,) CSR over entries by pair.
    src_pair_order: np.ndarray  #: (E,) pair ids grouped by shared source.
    src_pair_indptr: np.ndarray  #: (S+1,) CSR into src_pair_order.

    @property
    def n_pairs(self) -> int:
        return len(self.pair_cand)

    @classmethod
    def build(
        cls, groups: Sequence[FactGroup], sources: Sequence[SourceId]
    ) -> "DeltaHStatic":
        """Build the pair graph of ``groups`` over ``sources``."""
        source_index = {s: i for i, s in enumerate(sources)}
        n_groups = len(groups)
        n_sources = len(sources)
        rows: list[int] = []
        cols: list[int] = []
        srcs: list[int] = []
        truth: list[bool] = []
        max_degree = 0
        for row, group in enumerate(groups):
            for col, (source, symbol) in enumerate(group.signature):
                rows.append(row)
                cols.append(col)
                srcs.append(source_index[source])
                truth.append(symbol == Vote.TRUE.value)
            max_degree = max(max_degree, len(group.signature))
        sig_rows = np.array(rows, dtype=np.intp)
        sig_cols = np.array(cols, dtype=np.intp)
        sig_src = np.array(srcs, dtype=np.intp)
        sig_is_true = np.array(truth, dtype=bool)
        degree = np.array(
            [float(len(g.signature)) for g in groups], dtype=float
        )
        row_src_indptr = np.searchsorted(
            sig_rows, np.arange(n_groups + 1), side="left"
        ).astype(np.intp)

        order = np.lexsort((sig_rows, sig_src))
        v_row = sig_rows[order]
        v_src = sig_src[order]
        v_is_true = sig_is_true[order]
        src_vote_indptr = np.searchsorted(
            v_src, np.arange(n_sources + 1), side="left"
        ).astype(np.intp)

        # One (candidate, other, source, hyp-vote, sign) record per ordered
        # pair of distinct groups sharing the source.
        e_cand: list[np.ndarray] = []
        e_other: list[np.ndarray] = []
        e_src: list[np.ndarray] = []
        e_hyp: list[np.ndarray] = []
        e_sign: list[np.ndarray] = []
        for s in range(n_sources):
            lo = int(src_vote_indptr[s])
            hi = int(src_vote_indptr[s + 1])
            d = hi - lo
            if d < 2:
                continue
            block_rows = v_row[lo:hi]
            block_idx = np.arange(lo, hi, dtype=np.intp)
            block_sign = np.where(v_is_true[lo:hi], 1.0, -1.0)
            cand = np.repeat(block_rows, d)
            other = np.tile(block_rows, d)
            keep = cand != other
            e_cand.append(cand[keep])
            e_other.append(other[keep])
            e_src.append(np.full(int(keep.sum()), s, dtype=np.intp))
            e_hyp.append(np.repeat(block_idx, d)[keep])
            e_sign.append(np.tile(block_sign, d)[keep])
        if e_cand:
            ec = np.concatenate(e_cand)
            eh = np.concatenate(e_other)
            es = np.concatenate(e_src)
            ehyp = np.concatenate(e_hyp)
            esign = np.concatenate(e_sign)
        else:
            ec = eh = es = ehyp = np.empty(0, dtype=np.intp)
            esign = np.empty(0, dtype=float)
        entry_order = np.lexsort((es, eh, ec))
        ec = ec[entry_order]
        eh = eh[entry_order]
        es = es[entry_order]
        sv_hyp = ehyp[entry_order]
        sv_sign = esign[entry_order]

        n_entries = len(ec)
        if n_entries:
            key = ec.astype(np.int64) * np.int64(max(n_groups, 1)) + eh
            new_pair = np.empty(n_entries, dtype=bool)
            new_pair[0] = True
            np.not_equal(key[1:], key[:-1], out=new_pair[1:])
            boundaries = np.flatnonzero(new_pair)
            pair_cand = ec[boundaries].astype(np.intp)
            pair_other = eh[boundaries].astype(np.intp)
            sv_indptr = np.concatenate(
                (boundaries, [n_entries])
            ).astype(np.intp)
            entry_pair = (np.cumsum(new_pair) - 1).astype(np.intp)
        else:
            pair_cand = pair_other = np.empty(0, dtype=np.intp)
            sv_indptr = np.zeros(1, dtype=np.intp)
            entry_pair = np.empty(0, dtype=np.intp)
        cand_indptr = np.searchsorted(
            pair_cand, np.arange(n_groups + 1), side="left"
        ).astype(np.intp)
        other_order = np.argsort(pair_other, kind="stable").astype(np.intp)
        other_indptr = np.searchsorted(
            pair_other[other_order], np.arange(n_groups + 1), side="left"
        ).astype(np.intp)
        src_order = np.argsort(es, kind="stable")
        src_pair_order = entry_pair[src_order]
        src_pair_indptr = np.searchsorted(
            es[src_order], np.arange(n_sources + 1), side="left"
        ).astype(np.intp)
        return cls(
            n_groups=n_groups,
            n_sources=n_sources,
            max_degree=max_degree,
            degree=degree,
            sig_rows=sig_rows,
            sig_cols=sig_cols,
            sig_src=sig_src,
            sig_is_true=sig_is_true,
            row_src_indptr=row_src_indptr,
            v_row=v_row,
            v_src=v_src,
            v_is_true=v_is_true,
            src_vote_indptr=src_vote_indptr,
            pair_cand=pair_cand,
            pair_other=pair_other,
            cand_indptr=cand_indptr,
            other_order=other_order,
            other_indptr=other_indptr,
            sv_hyp=sv_hyp,
            sv_sign=sv_sign,
            sv_indptr=sv_indptr,
            src_pair_order=src_pair_order,
            src_pair_indptr=src_pair_indptr,
        )

    @classmethod
    def for_matrix(
        cls,
        matrix: VoteMatrix,
        groups: Sequence[FactGroup],
        sources: Sequence[SourceId],
    ) -> "DeltaHStatic":
        """The (cached) pair graph of ``matrix``'s grouping.

        ``groups``/``sources`` must be the matrix's canonical grouping (the
        cached :class:`~repro.core.arrays.GroupIndex` members); the built
        structure is cached in the matrix's derived cache so scalar and
        engine sessions over one matrix share a single instance.
        """
        cache = matrix.derived_cache()
        static = cache.get(_STATIC_KEY)
        if static is None:
            _METRICS.inc("arrays.deltah_static_cache.miss")
            static = cls.build(groups, sources)
            cache[_STATIC_KEY] = static
        else:
            _METRICS.inc("arrays.deltah_static_cache.hit")
        return static


class DeltaHEngine:
    """Mutable ΔH scorer over one :class:`DeltaHStatic` (see module doc).

    One engine serves one session (or one hand-built scoring call).  The
    session notifies it of committed evaluations
    (:meth:`note_evaluation` / :meth:`note_deactivated`); notifications
    accumulate — including across time points where no scoring happens —
    and are folded into the pair-term cache at the next
    :meth:`cross_scores` call.
    """

    def __init__(self, static: DeltaHStatic) -> None:
        self.static = static
        n_groups = static.n_groups
        n_pairs = static.n_pairs
        self._term = np.zeros(n_pairs, dtype=float)
        self._corr = np.zeros(n_pairs, dtype=float)
        self._prev_labels = np.zeros(n_groups, dtype=bool)
        self._touched_src = np.zeros(static.n_sources, dtype=bool)
        self._evaluated = np.zeros(n_groups, dtype=bool)
        #: active[pair_other] maintained across rounds — resynced from the
        #: caller's active vector on every rebuild, patched by
        #: :meth:`note_deactivated` in between.
        self._active_other = np.ones(n_pairs, dtype=bool)
        # Per-round scratch masks (allocated once; sizes are static).
        self._corr_mask = np.zeros(n_pairs, dtype=bool)
        self._stale_mask = np.zeros(n_pairs, dtype=bool)
        self._other_dirty = np.zeros(n_groups, dtype=bool)
        # Precomputed reduceat starts with the empty-segment guard (an
        # empty segment would otherwise swallow its successor's first
        # element) — segment layouts never change.
        nnz = len(static.sig_rows)
        self._num_starts = np.minimum(
            static.row_src_indptr[:-1], max(nnz - 1, 0)
        )
        self._empty_rows = np.flatnonzero(
            static.row_src_indptr[:-1] == static.row_src_indptr[1:]
        )
        self._cand_starts = np.minimum(
            static.cand_indptr[:-1], max(n_pairs - 1, 0)
        )
        self._empty_cands = np.flatnonzero(
            static.cand_indptr[:-1] == static.cand_indptr[1:]
        )
        self._primed = False
        self._smoothing = 0.0
        #: Stats of the last scoring call (when collect_stats was set).
        self.last_rescored = 0
        self.last_skipped = 0

    # ------------------------------------------------------------------
    # Invalidation hooks
    # ------------------------------------------------------------------
    def note_evaluation(self, row: int) -> None:
        """Record that facts of group ``row`` were committed: its voters'
        counters moved and its remaining size changed."""
        st = self.static
        lo = int(st.row_src_indptr[row])
        hi = int(st.row_src_indptr[row + 1])
        self._touched_src[st.sig_src[lo:hi]] = True
        self._evaluated[row] = True

    def note_deactivated(self, row: int) -> None:
        """Record that group ``row`` left the remaining set: its terms on
        the non-candidate side drop out of Equation 9's sum."""
        st = self.static
        ids = st.other_order[st.other_indptr[row] : st.other_indptr[row + 1]]
        self._term[ids] = 0.0
        self._active_other[ids] = False

    def invalidate_all(self) -> None:
        """Force a full recompute at the next scoring call."""
        self._primed = False

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def cross_scores(
        self,
        *,
        correct: np.ndarray,
        total: np.ndarray,
        sizes: np.ndarray,
        active: np.ndarray,
        probabilities: np.ndarray,
        default_trust: float,
        default_fact_probability: float,
        smoothing: float = 0.0,
        full: bool = False,
        collect_stats: bool = False,
    ) -> np.ndarray:
        """ΔH_cross of Equation 9 for every group row (full-length vector).

        All vector arguments are full-length (one entry per group row /
        source of the static structure); rows of inactive groups receive
        meaningless scores and must be sliced away by the caller.  With
        ``full`` the term cache is rebuilt from scratch — the reference
        path the incremental mode is bit-identical to.
        """
        st = self.static
        n_groups = st.n_groups
        if n_groups == 0:
            return np.zeros(0, dtype=float)
        labels = probabilities > 0.5
        if smoothing > 0:
            correct_sm = correct + default_trust * smoothing
            total_sm = total + smoothing
        else:
            correct_sm, total_sm = correct, total
        with np.errstate(divide="ignore", invalid="ignore"):
            base_trust = np.where(
                total_sm > 0, correct_sm / total_sm, default_trust
            )
            # Equation 5 numerator of every group under the (smoothed)
            # base trust — one contribution per vote in sorted-signature
            # order, folded per row by reduceat, so the additions replay
            # the scalar loop order (left to right within each row).
            if len(st.sig_rows):
                complement = 1.0 - base_trust
                contrib = np.where(
                    st.sig_is_true,
                    base_trust[st.sig_src],
                    complement[st.sig_src],
                )
                num = np.add.reduceat(contrib, self._num_starts)
                if self._empty_rows.size:
                    num[self._empty_rows] = 0.0
            else:
                num = np.zeros(n_groups, dtype=float)
            base_prob = num / st.degree
            base_prob = np.where(
                st.degree > 0, base_prob, default_fact_probability
            )
            entropy_now = binary_entropy_array(base_prob) * sizes

            if st.n_pairs == 0:
                self._finish_round(labels, smoothing)
                if collect_stats:
                    self.last_rescored = 0
                    self.last_skipped = int(np.count_nonzero(active))
                return np.zeros(n_groups, dtype=float)

            # Hypothetical trust deltas per (candidate, source) vote: what
            # the source's projected trust gains if the candidate's
            # remaining facts commit under its projected label.
            cand_sizes = sizes[st.v_row]
            agree = st.v_is_true == labels[st.v_row]
            hyp_trust = (correct_sm[st.v_src] + agree * cand_sizes) / (
                total_sm[st.v_src] + cand_sizes
            )
            dvals = hyp_trust - base_trust[st.v_src]

            rebuild = (
                full or not self._primed or smoothing != self._smoothing
            )
            if rebuild:
                self._term[:] = 0.0
                np.take(active, st.pair_other, out=self._active_other)
                stale = np.flatnonzero(self._active_other)
                corr_stale = stale
            else:
                stale, corr_stale = self._stale_pairs(labels, active)

            if corr_stale.size:
                starts = st.sv_indptr[corr_stale]
                counts = st.sv_indptr[corr_stale + 1] - starts
                cum = np.cumsum(counts)
                seg_starts = cum - counts
                entries = np.arange(int(cum[-1]), dtype=np.intp)
                entries += np.repeat(starts - seg_starts, counts)
                vals = dvals[st.sv_hyp[entries]]
                vals *= st.sv_sign[entries]
                # Every pair has >= 1 shared-vote entry, so no
                # empty-segment guard is needed here.
                self._corr[corr_stale] = np.add.reduceat(vals, seg_starts)
            if stale.size:
                other = st.pair_other[stale]
                hyp_prob = num[other]
                hyp_prob += self._corr[stale]
                hyp_prob /= st.degree[other]
                term = binary_entropy_array(hyp_prob)
                term *= sizes[other]
                term -= entropy_now[other]
                self._term[stale] = term

            if collect_stats:
                rescored_mask = np.zeros(n_groups, dtype=bool)
                if stale.size:
                    rescored_mask[st.pair_cand[stale]] = True
                rescored_mask &= active
                self.last_rescored = int(np.count_nonzero(rescored_mask))
                self.last_skipped = (
                    int(np.count_nonzero(active)) - self.last_rescored
                )

            delta = np.add.reduceat(self._term, self._cand_starts)
            if self._empty_cands.size:
                delta[self._empty_cands] = 0.0
        self._finish_round(labels, smoothing)
        return delta

    def _stale_pairs(
        self, labels: np.ndarray, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(term-stale, corr-stale) pair ids for the incremental path.

        corr-stale: pairs sharing a touched source, plus pairs whose
        candidate was evaluated or actually flipped its projected label.
        term-stale additionally covers every pair whose non-candidate side
        voted a touched source (its ``num``/``entropy_now`` moved).  Both
        sets are collected as masks over the pair axis — deduplicated and
        sorted for free — and filtered to pairs whose non-candidate side
        is still in the remaining set (the maintained ``_active_other``).
        """
        st = self.static
        touched = np.flatnonzero(self._touched_src)
        corr_mask = self._corr_mask
        corr_mask[:] = False
        if touched.size:
            starts = st.src_pair_indptr[touched]
            counts = st.src_pair_indptr[touched + 1] - starts
            corr_mask[st.src_pair_order[_gather_ranges(starts, counts)]] = (
                True
            )
        cand_dirty = self._evaluated | (
            (labels != self._prev_labels) & active
        )
        cand_rows = np.flatnonzero(cand_dirty)
        if cand_rows.size:
            starts = st.cand_indptr[cand_rows]
            counts = st.cand_indptr[cand_rows + 1] - starts
            corr_mask[_gather_ranges(starts, counts)] = True
        corr_mask &= self._active_other

        other_dirty = self._other_dirty
        other_dirty[:] = self._evaluated
        if touched.size:
            starts = st.src_vote_indptr[touched]
            counts = st.src_vote_indptr[touched + 1] - starts
            other_dirty[st.v_row[_gather_ranges(starts, counts)]] = True
        stale_mask = self._stale_mask
        np.take(other_dirty, st.pair_other, out=stale_mask)
        stale_mask &= self._active_other
        stale_mask |= corr_mask
        return np.flatnonzero(stale_mask), np.flatnonzero(corr_mask)

    def _finish_round(self, labels: np.ndarray, smoothing: float) -> None:
        self._prev_labels = labels
        self._touched_src[:] = False
        self._evaluated[:] = False
        self._primed = True
        self._smoothing = smoothing


class ScalarDeltaH:
    """ΔH scorer of the scalar reference backend.

    Holds the matrix-cached :class:`DeltaHStatic` (shared with any engine
    session over the same matrix) and an engine pinned to full-rescan mode
    — the scalar path *is* the reference the incremental path is compared
    against.  Built lazily: sessions that never rank (IncEstPS) pay
    nothing.
    """

    def __init__(self, matrix: VoteMatrix) -> None:
        self._matrix = matrix
        self._engine: DeltaHEngine | None = None
        self._sources: list[SourceId] | None = None
        self._row_of: dict | None = None

    def _ensure(self) -> DeltaHEngine:
        if self._engine is None:
            from repro.core.arrays import GroupIndex

            index = GroupIndex.for_matrix(self._matrix)
            static = DeltaHStatic.for_matrix(
                self._matrix, index.groups, index.sources
            )
            self._engine = DeltaHEngine(static)
            self._sources = index.sources
            self._row_of = {
                group.signature: row
                for row, group in enumerate(index.groups)
            }
        return self._engine

    def scores(
        self,
        groups: Sequence[FactGroup],
        probabilities: np.ndarray,
        correct_counts: Mapping[SourceId, float],
        total_counts: Mapping[SourceId, float],
        default_trust: float,
        default_fact_probability: float,
        smoothing: float,
    ) -> np.ndarray:
        """ΔH_cross for ``groups`` (rows of the full grouping), full rescan."""
        engine = self._ensure()
        static = engine.static
        rows = np.array(
            [self._row_of[group.signature] for group in groups],
            dtype=np.intp,
        )
        n_groups = static.n_groups
        active = np.zeros(n_groups, dtype=bool)
        active[rows] = True
        sizes = np.zeros(n_groups, dtype=float)
        sizes[rows] = [float(group.size) for group in groups]
        probs = np.zeros(n_groups, dtype=float)
        probs[rows] = probabilities
        sources = self._sources
        correct = np.array(
            [correct_counts.get(s, 0) for s in sources], dtype=float
        )
        total = np.array(
            [total_counts.get(s, 0) for s in sources], dtype=float
        )
        delta = engine.cross_scores(
            correct=correct,
            total=total,
            sizes=sizes,
            active=active,
            probabilities=probs,
            default_trust=default_trust,
            default_fact_probability=default_fact_probability,
            smoothing=smoothing,
            full=True,
        )
        return delta[rows]
