"""repro — reproduction of *Corroborating Facts from Affirmative Statements*
(Minji Wu & Amélie Marian, EDBT 2014).

The package implements the paper's **IncEstimate** incremental
corroboration algorithm with multi-value trust scores, every baseline it
compares against (Voting, Counting, TwoEstimate, ThreeEstimate,
BayesEstimate/LTM, SMO-SVM and logistic-regression classifiers), the
dataset generators behind its evaluation (motivating example, calibrated
restaurant-crawl simulator, Hubdub-like multi-answer generator, Section
6.3.1 synthetic model), the entity-resolution pipeline of Section 6.2.1,
and an evaluation harness that regenerates every table and figure.

Quickstart::

    from repro import IncEstimate, IncEstHeu, motivating_example

    dataset = motivating_example()
    result = IncEstimate(IncEstHeu()).run(dataset)
    print(result.labels())        # corroborated value per fact
    print(result.trust)           # final trust score per source
"""

from repro.baselines import (
    AvgLog,
    BayesEstimate,
    Cosine,
    Counting,
    Invest,
    PooledInvest,
    ThreeEstimate,
    TruthFinder,
    TwoEstimate,
    Voting,
)
from repro.core import (
    CorroborationResult,
    Corroborator,
    IncEstHeu,
    IncEstPS,
    IncEstimate,
    TrustTrajectory,
    binary_entropy,
    collective_entropy,
)
from repro.datasets import (
    generate_hubdub_like,
    generate_restaurants,
    generate_synthetic,
    motivating_example,
)
from repro.eval import (
    ConfusionCounts,
    evaluate_result,
    render_table,
    run_methods,
    trust_mse_for,
)
from repro.ml import LinearSVM, LogisticRegression, ml_logistic, ml_svm
from repro.model import Dataset, Question, QuestionSet, Vote, VoteMatrix
from repro.resilience import (
    CheckpointManager,
    ErrorPolicy,
    FaultPlan,
    IngestError,
    IngestReport,
    Supervision,
)
from repro.serve import CorroborationService, RefreshDecision, make_server
from repro.store import LedgerError, VoteLedger

__version__ = "1.0.0"

__all__ = [
    "AvgLog",
    "BayesEstimate",
    "CheckpointManager",
    "ConfusionCounts",
    "CorroborationResult",
    "CorroborationService",
    "Corroborator",
    "Cosine",
    "Counting",
    "Dataset",
    "ErrorPolicy",
    "FaultPlan",
    "IngestError",
    "IngestReport",
    "LedgerError",
    "RefreshDecision",
    "Supervision",
    "IncEstHeu",
    "IncEstPS",
    "IncEstimate",
    "Invest",
    "LinearSVM",
    "LogisticRegression",
    "PooledInvest",
    "Question",
    "QuestionSet",
    "ThreeEstimate",
    "TrustTrajectory",
    "TruthFinder",
    "TwoEstimate",
    "Vote",
    "VoteLedger",
    "VoteMatrix",
    "Voting",
    "binary_entropy",
    "collective_entropy",
    "evaluate_result",
    "generate_hubdub_like",
    "generate_restaurants",
    "generate_synthetic",
    "make_server",
    "ml_logistic",
    "ml_svm",
    "motivating_example",
    "render_table",
    "run_methods",
    "trust_mse_for",
]
