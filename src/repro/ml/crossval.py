"""Stratified k-fold cross-validation and the ML corroborator wrapper.

The paper reports the ML baselines "using 10-fold cross validation" over
the golden set: every golden fact is predicted by a model trained on the
other nine folds, and precision / recall / accuracy are computed over the
union of held-out predictions.  :class:`MLCorroborator` adapts that
protocol to the :class:`~repro.core.result.Corroborator` interface so the
ML baselines drop into the same experiment harness as everything else.
"""

from __future__ import annotations

import functools
from collections.abc import Callable

import numpy as np

from repro.core.result import CorroborationResult, Corroborator
from repro.ml.features import labelled_examples, vote_features
from repro.ml.logistic import LogisticRegression
from repro.ml.svm import LinearSVM
from repro.model.dataset import Dataset
from repro.model.matrix import FactId
from repro.model.votes import Vote
from repro.obs import NULL_OBS, Obs
from repro.parallel.shards import ShardRunner

#: A factory returning a fresh, unfitted model with fit / predict_proba.
#: Must be picklable (a class, module-level function, or
#: ``functools.partial``) to run folds under ``workers=N``.
ModelFactory = Callable[[], object]


def stratified_folds(
    labels: np.ndarray, k: int, seed: int = 0
) -> list[np.ndarray]:
    """Index folds preserving the class ratio, shuffled deterministically."""
    if k < 2:
        raise ValueError(f"need at least 2 folds, got {k}")
    labels = np.asarray(labels, dtype=bool)
    if k > labels.size:
        raise ValueError(f"{k} folds but only {labels.size} examples")
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(k)]
    for cls in (True, False):
        indices = np.flatnonzero(labels == cls)
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % k].append(int(index))
    return [np.array(sorted(fold), dtype=int) for fold in folds]


def _fold_cell(payload: tuple, obs: Obs) -> np.ndarray:
    """One cross-validation fold: fit on the complement, predict held-out.

    Module-level so a ``spawn`` pool can pickle it by reference.  ``obs``
    is the shard bundle the runner provides; folds record nothing today.
    """
    del obs
    model_factory, features, labels, fold = payload
    mask = np.ones(labels.shape[0], dtype=bool)
    mask[fold] = False
    model = model_factory()
    model.fit(features[mask], labels[mask])
    return model.predict_proba(features[fold])


def cross_val_probabilities(
    model_factory: ModelFactory,
    features: np.ndarray,
    labels: np.ndarray,
    k: int = 10,
    seed: int = 0,
    workers: int | None = None,
    obs: Obs = NULL_OBS,
) -> np.ndarray:
    """Held-out P(true) per example from k-fold cross-validation.

    Folds are independent given the (deterministic) fold split, so with
    ``workers=N`` they run as shards on a ``spawn`` pool; the assembled
    probability vector is bit-identical for every worker count because
    each fold writes only its own indices.  A failing fold fails the whole
    cross-validation (the union of held-out predictions would be
    incomplete), so the runner does not isolate errors.
    """
    folds = stratified_folds(labels, k, seed)
    probabilities = np.empty(labels.shape[0])
    if workers is None:
        for fold in folds:
            probabilities[fold] = _fold_cell(
                (model_factory, features, labels, fold), NULL_OBS
            )
        return probabilities
    runner = ShardRunner(
        workers=workers, isolate_errors=False, obs=obs, label="crossval"
    )
    outcomes = runner.run(
        _fold_cell,
        [(model_factory, features, labels, fold) for fold in folds],
        labels=[f"fold-{i}" for i in range(len(folds))],
    )
    for fold, outcome in zip(folds, outcomes):
        probabilities[fold] = outcome.value
    return probabilities


class MLCorroborator(Corroborator):
    """Wrap a classifier into the corroborator interface (paper protocol).

    Facts in the golden set get held-out k-fold cross-validation
    probabilities (so no fact is predicted by a model that saw its label);
    facts outside the golden set get probabilities from a model trained on
    the full golden set.  The reported per-source trust score is the
    classifier's implied precision of each source's T votes, mirroring the
    ML-Logistic row of Table 5.
    """

    def __init__(
        self,
        name: str,
        model_factory: ModelFactory,
        folds: int = 10,
        seed: int = 0,
        workers: int | None = None,
    ) -> None:
        self.name = name
        self.model_factory = model_factory
        self.folds = folds
        self.seed = seed
        self.workers = workers

    def run(self, dataset: Dataset) -> CorroborationResult:
        features, labels, golden_facts, _ = labelled_examples(dataset)
        k = min(self.folds, labels.size)
        probabilities_golden = cross_val_probabilities(
            self.model_factory,
            features,
            labels,
            k=k,
            seed=self.seed,
            workers=self.workers,
        )
        probabilities: dict[FactId, float] = {
            f: float(np.clip(p, 0.0, 1.0))
            for f, p in zip(golden_facts, probabilities_golden)
        }

        golden = set(golden_facts)
        other_facts = [f for f in dataset.matrix.facts if f not in golden]
        if other_facts:
            model = self.model_factory()
            model.fit(features, labels)
            other_features, other_scope, _ = vote_features(dataset, other_facts)
            for fact, p in zip(other_scope, model.predict_proba(other_features)):
                probabilities[fact] = float(np.clip(p, 0.0, 1.0))

        trust = self._implied_trust(dataset, probabilities)
        return self._result(probabilities, trust, iterations=k)

    def _implied_trust(
        self, dataset: Dataset, probabilities: dict[FactId, float]
    ) -> dict[str, float]:
        """Per-source accuracy implied by the classifier's predictions."""
        trust: dict[str, float] = {}
        for source in dataset.matrix.sources:
            agreements: list[float] = []
            for fact, vote in dataset.matrix.votes_by(source).items():
                if fact not in dataset.golden_set and dataset.golden_set:
                    continue
                p = probabilities[fact]
                agreements.append(p if vote is Vote.TRUE else 1.0 - p)
            trust[source] = float(np.mean(agreements)) if agreements else 0.5
        return trust


def ml_svm(seed: int = 0, workers: int | None = None) -> MLCorroborator:
    """The paper's ML-SVM (SMO) baseline.

    The model factory is a ``functools.partial`` (not a lambda) so the
    corroborator pickles across the ``spawn`` boundary of a sharded sweep.
    """
    return MLCorroborator(
        "ML-SVM (SMO)",
        functools.partial(LinearSVM, seed=seed),
        seed=seed,
        workers=workers,
    )


def ml_logistic(seed: int = 0, workers: int | None = None) -> MLCorroborator:
    """The paper's ML-Logistic baseline."""
    return MLCorroborator(
        "ML-Logistic", LogisticRegression, seed=seed, workers=workers
    )
