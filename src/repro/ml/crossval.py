"""Stratified k-fold cross-validation and the ML corroborator wrapper.

The paper reports the ML baselines "using 10-fold cross validation" over
the golden set: every golden fact is predicted by a model trained on the
other nine folds, and precision / recall / accuracy are computed over the
union of held-out predictions.  :class:`MLCorroborator` adapts that
protocol to the :class:`~repro.core.result.Corroborator` interface so the
ML baselines drop into the same experiment harness as everything else.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.result import CorroborationResult, Corroborator
from repro.ml.features import labelled_examples, vote_features
from repro.ml.logistic import LogisticRegression
from repro.ml.svm import LinearSVM
from repro.model.dataset import Dataset
from repro.model.matrix import FactId
from repro.model.votes import Vote

#: A factory returning a fresh, unfitted model with fit / predict_proba.
ModelFactory = Callable[[], object]


def stratified_folds(
    labels: np.ndarray, k: int, seed: int = 0
) -> list[np.ndarray]:
    """Index folds preserving the class ratio, shuffled deterministically."""
    if k < 2:
        raise ValueError(f"need at least 2 folds, got {k}")
    labels = np.asarray(labels, dtype=bool)
    if k > labels.size:
        raise ValueError(f"{k} folds but only {labels.size} examples")
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(k)]
    for cls in (True, False):
        indices = np.flatnonzero(labels == cls)
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % k].append(int(index))
    return [np.array(sorted(fold), dtype=int) for fold in folds]


def cross_val_probabilities(
    model_factory: ModelFactory,
    features: np.ndarray,
    labels: np.ndarray,
    k: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """Held-out P(true) per example from k-fold cross-validation."""
    probabilities = np.empty(labels.shape[0])
    for fold in stratified_folds(labels, k, seed):
        mask = np.ones(labels.shape[0], dtype=bool)
        mask[fold] = False
        model = model_factory()
        model.fit(features[mask], labels[mask])
        probabilities[fold] = model.predict_proba(features[fold])
    return probabilities


class MLCorroborator(Corroborator):
    """Wrap a classifier into the corroborator interface (paper protocol).

    Facts in the golden set get held-out k-fold cross-validation
    probabilities (so no fact is predicted by a model that saw its label);
    facts outside the golden set get probabilities from a model trained on
    the full golden set.  The reported per-source trust score is the
    classifier's implied precision of each source's T votes, mirroring the
    ML-Logistic row of Table 5.
    """

    def __init__(self, name: str, model_factory: ModelFactory, folds: int = 10, seed: int = 0) -> None:
        self.name = name
        self.model_factory = model_factory
        self.folds = folds
        self.seed = seed

    def run(self, dataset: Dataset) -> CorroborationResult:
        features, labels, golden_facts, _ = labelled_examples(dataset)
        k = min(self.folds, labels.size)
        probabilities_golden = cross_val_probabilities(
            self.model_factory, features, labels, k=k, seed=self.seed
        )
        probabilities: dict[FactId, float] = {
            f: float(np.clip(p, 0.0, 1.0))
            for f, p in zip(golden_facts, probabilities_golden)
        }

        golden = set(golden_facts)
        other_facts = [f for f in dataset.matrix.facts if f not in golden]
        if other_facts:
            model = self.model_factory()
            model.fit(features, labels)
            other_features, other_scope, _ = vote_features(dataset, other_facts)
            for fact, p in zip(other_scope, model.predict_proba(other_features)):
                probabilities[fact] = float(np.clip(p, 0.0, 1.0))

        trust = self._implied_trust(dataset, probabilities)
        return self._result(probabilities, trust, iterations=k)

    def _implied_trust(
        self, dataset: Dataset, probabilities: dict[FactId, float]
    ) -> dict[str, float]:
        """Per-source accuracy implied by the classifier's predictions."""
        trust: dict[str, float] = {}
        for source in dataset.matrix.sources:
            agreements: list[float] = []
            for fact, vote in dataset.matrix.votes_by(source).items():
                if fact not in dataset.golden_set and dataset.golden_set:
                    continue
                p = probabilities[fact]
                agreements.append(p if vote is Vote.TRUE else 1.0 - p)
            trust[source] = float(np.mean(agreements)) if agreements else 0.5
        return trust


def ml_svm(seed: int = 0) -> MLCorroborator:
    """The paper's ML-SVM (SMO) baseline."""
    return MLCorroborator("ML-SVM (SMO)", lambda: LinearSVM(seed=seed), seed=seed)


def ml_logistic(seed: int = 0) -> MLCorroborator:
    """The paper's ML-Logistic baseline."""
    return MLCorroborator("ML-Logistic", LogisticRegression, seed=seed)
