"""Featurisation of votes for the ML baselines (paper Section 6.1.1).

"Since our problem can be naturally seen as a classification problem, we
also tested machine learning based algorithms using the votes as features."
Each fact becomes one example; each source contributes one feature with the
standard encoding T → +1, F → −1, missing → 0.  The paper highlights that
the classifiers exploit exactly this: "the most discriminating features are
the F votes from the 3 sources" and "the performance gain ... is largely
due to the consideration of missing votes among sources".
"""

from __future__ import annotations

import numpy as np

from repro.model.dataset import Dataset
from repro.model.matrix import FactId, SourceId
from repro.model.votes import Vote

#: Feature values of the vote encoding.
VOTE_VALUES = {Vote.TRUE: 1.0, Vote.FALSE: -1.0}


def vote_features(
    dataset: Dataset, facts: list[FactId] | None = None
) -> tuple[np.ndarray, list[FactId], list[SourceId]]:
    """Encode facts as (n_facts, n_sources) vote-feature matrix.

    Returns the matrix together with the fact order (rows) and source
    order (columns) used.
    """
    scope = dataset.matrix.facts if facts is None else list(facts)
    sources = dataset.matrix.sources
    source_index = {s: i for i, s in enumerate(sources)}
    features = np.zeros((len(scope), len(sources)))
    for row, fact in enumerate(scope):
        for source, vote in dataset.matrix.votes_on(fact).items():
            features[row, source_index[source]] = VOTE_VALUES[vote]
    return features, scope, sources


def labelled_examples(
    dataset: Dataset,
) -> tuple[np.ndarray, np.ndarray, list[FactId], list[SourceId]]:
    """Features and boolean labels for the dataset's evaluation facts.

    Used to train the ML baselines on the golden set (the paper's
    classifiers "only run over the golden set", Section 6.2.5).
    """
    facts = dataset.evaluation_facts()
    if not facts:
        raise ValueError("dataset has no labelled facts to learn from")
    features, scope, sources = vote_features(dataset, facts)
    labels = np.array([dataset.truth[f] for f in scope], dtype=bool)
    return features, labels, scope, sources
