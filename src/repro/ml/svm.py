"""Linear support vector machine trained with a from-scratch SMO optimiser.

A replacement for the paper's Weka "SVM classifier (using SMO
implementation)".  Weka's default SMO uses a linear (degree-1 polynomial)
kernel with C = 1; we implement the classic Platt SMO dual solver
(simplified working-set selection: iterate over violators, pick the second
index maximising |E_i − E_j|) for the linear kernel, with the kernel matrix
precomputed — golden-set-sized training (hundreds of examples) solves in
milliseconds.
"""

from __future__ import annotations

import numpy as np


class LinearSVM:
    """Soft-margin linear SVM via sequential minimal optimisation.

    Args:
        c: box constraint (Weka default 1.0).
        tolerance: KKT violation tolerance.
        max_passes: number of consecutive full passes without any update
            before declaring convergence.
        max_iterations: hard cap on optimisation sweeps.
        seed: RNG seed for the second-index tie-breaking.
    """

    def __init__(
        self,
        c: float = 1.0,
        tolerance: float = 1e-3,
        max_passes: int = 3,
        max_iterations: int = 200,
        seed: int = 0,
    ) -> None:
        if c <= 0:
            raise ValueError(f"c must be positive, got {c}")
        self.c = c
        self.tolerance = tolerance
        self.max_passes = max_passes
        self.max_iterations = max_iterations
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        """Fit on (n, d) features and boolean labels (True = +1)."""
        x = np.asarray(features, dtype=float)
        y = np.where(np.asarray(labels, dtype=bool), 1.0, -1.0)
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit an SVM on zero examples")
        if len(np.unique(y)) < 2:
            # Degenerate single-class training fold: predict that class.
            self.weights = np.zeros(x.shape[1])
            self.bias = float(y[0])
            return self

        rng = np.random.default_rng(self.seed)
        kernel = x @ x.T
        alpha = np.zeros(n)
        bias = 0.0
        passes = 0
        iterations = 0
        while passes < self.max_passes and iterations < self.max_iterations:
            iterations += 1
            changed = 0
            errors = (alpha * y) @ kernel + bias - y
            for i in range(n):
                error_i = float((alpha * y) @ kernel[:, i] + bias - y[i])
                violates = (y[i] * error_i < -self.tolerance and alpha[i] < self.c) or (
                    y[i] * error_i > self.tolerance and alpha[i] > 0
                )
                if not violates:
                    continue
                # Platt's fallback cascade: try the max-|E_i − E_j| pick
                # first, then sweep the remaining indices in random order
                # until some pair makes progress.
                first = self._pick_second(i, error_i, errors, n, rng)
                candidates = [first] + [
                    int(j) for j in rng.permutation(n) if j != i and j != first
                ]
                for j in candidates:
                    error_j = float((alpha * y) @ kernel[:, j] + bias - y[j])
                    old_alphas = self._optimise_pair(
                        i, j, error_i, error_j, alpha, y, kernel
                    )
                    if old_alphas is None:
                        continue
                    bias = self._update_bias(
                        bias, i, j, old_alphas, error_i, error_j, alpha, y, kernel
                    )
                    changed += 1
                    break
            passes = passes + 1 if changed == 0 else 0
        self.weights = (alpha * y) @ x
        self.bias = bias
        return self

    # The pair optimisation mutates alpha in place and returns the old
    # values so the bias update can use them; split out for readability.
    def _optimise_pair(self, i, j, error_i, error_j, alpha, y, kernel):
        if i == j:
            return None
        alpha_i_old, alpha_j_old = alpha[i], alpha[j]
        if y[i] != y[j]:
            low = max(0.0, alpha[j] - alpha[i])
            high = min(self.c, self.c + alpha[j] - alpha[i])
        else:
            low = max(0.0, alpha[i] + alpha[j] - self.c)
            high = min(self.c, alpha[i] + alpha[j])
        if high - low < 1e-12:
            return None
        eta = 2.0 * kernel[i, j] - kernel[i, i] - kernel[j, j]
        if eta >= 0:
            return None
        alpha_j_new = alpha_j_old - y[j] * (error_i - error_j) / eta
        alpha_j_new = float(np.clip(alpha_j_new, low, high))
        if abs(alpha_j_new - alpha_j_old) < 1e-6:
            return None
        alpha[j] = alpha_j_new
        alpha[i] = alpha_i_old + y[i] * y[j] * (alpha_j_old - alpha_j_new)
        return alpha_i_old, alpha_j_old

    def _update_bias(self, bias, i, j, old, error_i, error_j, alpha, y, kernel):
        alpha_i_old, alpha_j_old = old
        b1 = (
            bias
            - error_i
            - y[i] * (alpha[i] - alpha_i_old) * kernel[i, i]
            - y[j] * (alpha[j] - alpha_j_old) * kernel[i, j]
        )
        b2 = (
            bias
            - error_j
            - y[i] * (alpha[i] - alpha_i_old) * kernel[i, j]
            - y[j] * (alpha[j] - alpha_j_old) * kernel[j, j]
        )
        if 0 < alpha[i] < self.c:
            return float(b1)
        if 0 < alpha[j] < self.c:
            return float(b2)
        return float((b1 + b2) / 2.0)

    @staticmethod
    def _pick_second(
        i: int, error_i: float, errors: np.ndarray, n: int, rng: np.random.Generator
    ) -> int:
        gaps = np.abs(errors - error_i)
        gaps[i] = -1.0
        j = int(np.argmax(gaps))
        if gaps[j] <= 0:
            j = int(rng.integers(n))
            while j == i:
                j = int(rng.integers(n))
        return j

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margin per example."""
        if self.weights is None:
            raise RuntimeError("fit() must be called before decision_function()")
        return np.asarray(features, dtype=float) @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Boolean predictions (margin >= 0 → true)."""
        return self.decision_function(features) >= 0.0

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Margin squashed through a logistic link (Platt-style, unscaled).

        Good enough for ranking / threshold-0.5 use; the paper's metrics
        only require hard predictions.
        """
        margin = self.decision_function(features)
        return 1.0 / (1.0 + np.exp(-np.clip(margin, -500, 500)))
