"""Logistic regression trained by iteratively reweighted least squares.

A from-scratch replacement for the paper's Weka "logistic classifier with
default parameter": binary logistic regression with an intercept, a small
L2 ridge for numerical stability (Weka's Logistic likewise uses a ridge
estimator, default 1e-8), fitted by Newton / IRLS iterations.
"""

from __future__ import annotations

import numpy as np


class LogisticRegression:
    """Binary logistic regression (Newton/IRLS).

    Args:
        ridge: L2 penalty on the weights (not the intercept).
        max_iterations: Newton step cap; IRLS converges in a handful of
            steps on separable-ish vote data thanks to the ridge.
        tolerance: convergence threshold on the weight update norm.
    """

    def __init__(
        self,
        ridge: float = 1e-4,
        max_iterations: int = 50,
        tolerance: float = 1e-8,
    ) -> None:
        if ridge < 0:
            raise ValueError(f"ridge must be >= 0, got {ridge}")
        self.ridge = ridge
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.weights: np.ndarray | None = None  # includes intercept at [0]

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit on (n, d) features and boolean (or 0/1) labels."""
        x = self._with_intercept(np.asarray(features, dtype=float))
        y = np.asarray(labels, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        if not ((y == 0) | (y == 1)).all():
            raise ValueError("labels must be boolean / 0-1")
        n, d = x.shape
        w = np.zeros(d)
        penalty = np.full(d, self.ridge)
        penalty[0] = 0.0  # never shrink the intercept
        for _ in range(self.max_iterations):
            z = x @ w
            p = _sigmoid(z)
            gradient = x.T @ (p - y) + penalty * w
            weight = np.clip(p * (1.0 - p), 1e-10, None)
            hessian = (x * weight[:, None]).T @ x + np.diag(penalty + 1e-12)
            step = np.linalg.solve(hessian, gradient)
            w = w - step
            if np.linalg.norm(step) < self.tolerance:
                break
        self.weights = w
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = true) per example."""
        if self.weights is None:
            raise RuntimeError("fit() must be called before predict_proba()")
        x = self._with_intercept(np.asarray(features, dtype=float))
        return _sigmoid(x @ self.weights)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Boolean predictions at the 0.5 threshold."""
        return self.predict_proba(features) >= 0.5

    @staticmethod
    def _with_intercept(features: np.ndarray) -> np.ndarray:
        return np.hstack([np.ones((features.shape[0], 1)), features])


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Split by sign to stay overflow-free for large |z|.
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out
