"""From-scratch ML baselines: logistic regression, SMO linear SVM, k-fold CV."""

from repro.ml.crossval import (
    MLCorroborator,
    cross_val_probabilities,
    ml_logistic,
    ml_svm,
    stratified_folds,
)
from repro.ml.features import labelled_examples, vote_features
from repro.ml.logistic import LogisticRegression
from repro.ml.svm import LinearSVM

__all__ = [
    "LinearSVM",
    "LogisticRegression",
    "MLCorroborator",
    "cross_val_probabilities",
    "labelled_examples",
    "ml_logistic",
    "ml_svm",
    "stratified_folds",
    "vote_features",
]
