"""Prometheus text exposition (format 0.0.4) for a metrics registry.

:func:`render_prometheus` flattens a :class:`~repro.obs.metrics
.MetricsRegistry` into the plain-text scrape format: counters become
``_total``-suffixed counter families, gauges stay gauges, and every
histogram is emitted twice — once as a classic Prometheus histogram
(cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``, so
``histogram_quantile()`` works server-side) and once as pre-computed
``{quantile="..."}`` gauge samples for humans reading the endpoint raw.

Metric names are sanitised from the library's dotted form
(``serve.request_seconds`` → ``repro_serve_request_seconds``); dots and
dashes map to underscores and any other invalid character is dropped.

:func:`parse_prometheus_text` is the counterpart used by the tests, the
load generator's live-scrape check and the CI smoke job: it parses an
exposition body back into a ``{"name{labels}": value}`` mapping and
raises on malformed lines, so a formatting regression fails loudly.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import SUMMARY_QUANTILES, MetricsRegistry

#: Content type a compliant scrape endpoint must declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix of every exposed metric family.
METRIC_PREFIX = "repro"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)


def sanitize_metric_name(name: str, prefix: str = METRIC_PREFIX) -> str:
    """A dotted library metric name as a valid Prometheus family name."""
    flat = re.sub(r"[.\-\s/]", "_", name)
    flat = re.sub(r"[^a-zA-Z0-9_:]", "", flat)
    flat = re.sub(r"__+", "_", flat).strip("_")
    full = f"{prefix}_{flat}" if prefix else flat
    if not _NAME_OK.match(full):
        raise ValueError(f"cannot sanitise metric name {name!r}")
    return full


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry | None,
    *,
    extra_gauges: dict[str, float] | None = None,
    prefix: str = METRIC_PREFIX,
) -> str:
    """The registry as a Prometheus text-format scrape body.

    ``extra_gauges`` lets the caller splice point-in-time values (uptime,
    pending facts, refresh age) into the same scrape without mutating the
    registry.  ``registry=None`` (telemetry disabled) renders the extra
    gauges alone — the endpoint stays scrapeable either way.
    """
    lines: list[str] = []

    def family(name: str, kind: str) -> str:
        flat = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {flat} {name}")
        lines.append(f"# TYPE {flat} {kind}")
        return flat

    if registry is not None:
        snapshot = registry.snapshot()
        for name in sorted(snapshot["counters"]):
            flat = family(f"{name}_total", "counter")
            lines.append(f"{flat} {_format_value(snapshot['counters'][name])}")
        for name in sorted(snapshot["gauges"]):
            flat = family(name, "gauge")
            lines.append(f"{flat} {_format_value(snapshot['gauges'][name])}")
        for name in sorted(snapshot["histograms"]):
            summary = snapshot["histograms"][name]
            flat = family(name, "histogram")
            for bound, cumulative in registry.histogram_buckets(name):
                le = "+Inf" if math.isinf(bound) else _format_value(bound)
                lines.append(f'{flat}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{flat}_sum {_format_value(summary['sum'])}")
            lines.append(f"{flat}_count {summary['count']}")
            quantile_flat = family(f"{name}_quantile", "gauge")
            for q in SUMMARY_QUANTILES:
                value = registry.quantile(name, q)
                lines.append(
                    f'{quantile_flat}{{quantile="{_format_value(q)}"}} '
                    f"{_format_value(value)}"
                )
    for name in sorted(extra_gauges or {}):
        flat = family(name, "gauge")
        lines.append(f"{flat} {_format_value(extra_gauges[name])}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(body: str) -> dict[str, float]:
    """Parse an exposition body into ``{"name{labels}": value}``.

    Only the subset :func:`render_prometheus` emits is required, which is
    also the subset any 0.0.4 scraper accepts: ``# HELP`` / ``# TYPE``
    comments, blank lines, and ``name[{labels}] value`` samples.  Raises
    ``ValueError`` on anything else — the validator role.
    """
    samples: dict[str, float] = {}
    for number, raw in enumerate(body.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if not (line.startswith("# HELP ") or line.startswith("# TYPE ")):
                raise ValueError(f"line {number}: unknown comment {line!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {number}: unparseable sample {line!r}")
        key = match.group("name") + (match.group("labels") or "")
        value = match.group("value")
        try:
            samples[key] = float(value)
        except ValueError as exc:
            raise ValueError(
                f"line {number}: non-numeric value {value!r}"
            ) from exc
    if not samples:
        raise ValueError("exposition body holds no samples")
    return samples
