"""Nestable span tracing with Chrome trace-event export.

The tracer answers "where did the time go *inside one run*" at the level
the incremental algorithm actually works: a ``session.step`` span per time
point, with ``session.probabilities`` / ``session.select`` /
``selection.delta_h`` / ``session.commit`` children, so a Perfetto or
``chrome://tracing`` timeline shows each round's anatomy instead of one
opaque "steps" number.

Two implementations share the interface:

* :data:`NULL_TRACER` — the default.  ``span()`` returns a process-wide
  singleton context manager whose enter/exit do nothing, so the disabled
  path allocates nothing and costs two method calls per span site.  Every
  instrumented module takes this as its default; numerics are never read,
  let alone touched.
* :class:`SpanTracer` — records one *complete event* per closed span
  (monotonic ``perf_counter_ns`` timestamps relative to tracer creation)
  and exports the Chrome trace-event JSON object format, loadable in
  ``chrome://tracing`` / https://ui.perfetto.dev.

Spans nest lexically through the context-manager protocol; the export
relies on Chrome's ts/dur containment rule to render the hierarchy, so no
parent pointers are stored.  The tracer is deliberately single-threaded
(one per run/session), matching every driver in this library.
"""

from __future__ import annotations

import json
import pathlib
import time

#: Schema version stamped into the exported trace's ``otherData``.
TRACE_SCHEMA_VERSION = 1

#: Category assigned to every event (Chrome's filter box groups by it).
_CATEGORY = "repro"


class NullSpan:
    """The do-nothing span; a single instance serves every disabled site."""

    __slots__ = ()

    #: Duration of a span that never ran.
    duration_s = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, **args) -> None:
        """Attach arguments to the span (no-op)."""


#: The reusable no-op span (also what :data:`NULL_TRACER` hands out).
NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer that records nothing — the default everywhere.

    ``span()`` accepts and discards any arguments and returns
    :data:`NULL_SPAN`; there is nothing to export.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **args) -> NullSpan:
        return NULL_SPAN

    def instant(self, name: str, **args) -> None:
        pass


#: Process-wide no-op tracer singleton.
NULL_TRACER = NullTracer()


class Span:
    """One in-flight span of a :class:`SpanTracer` (context manager).

    Created by :meth:`SpanTracer.span`; on exit it appends a Chrome
    complete event (``ph: "X"``) to the tracer.  :attr:`duration_s` is
    available after the span closes — the bench derives its per-phase
    timings from it instead of hand-placed ``perf_counter`` pairs.
    """

    __slots__ = ("_tracer", "name", "args", "_start_ns", "_dur_ns")

    def __init__(self, tracer: "SpanTracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0
        self._dur_ns = 0

    def add(self, **args) -> None:
        """Attach extra key/value arguments to the span."""
        self.args.update(args)

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds the span covered (0.0 while still open)."""
        return self._dur_ns / 1e9

    def __enter__(self) -> "Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        self._dur_ns = time.perf_counter_ns() - self._start_ns
        self._tracer._finish(self)
        return False


class SpanTracer:
    """Collects spans and exports Chrome trace-event JSON.

    Events accumulate in memory (one small dict per closed span — the
    incremental algorithm produces a few spans per time point, so even the
    full restaurants run stays in the low thousands) and are written once
    at the end via :meth:`write`.
    """

    __slots__ = ("events", "_origin_ns")

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._origin_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **args) -> Span:
        """A new span named ``name``; use as a context manager."""
        return Span(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration instant event (Chrome ``ph: "i"``)."""
        self.events.append(
            {
                "name": name,
                "cat": _CATEGORY,
                "ph": "i",
                "ts": (time.perf_counter_ns() - self._origin_ns) / 1e3,
                "pid": 1,
                "tid": 1,
                "s": "t",
                "args": args,
            }
        )

    def _finish(self, span: Span) -> None:
        self.events.append(
            {
                "name": span.name,
                "cat": _CATEGORY,
                "ph": "X",
                "ts": (span._start_ns - self._origin_ns) / 1e3,
                "dur": span._dur_ns / 1e3,
                "pid": 1,
                "tid": 1,
                "args": span.args,
            }
        )

    # ------------------------------------------------------------------
    # Reading / export
    # ------------------------------------------------------------------
    def total_seconds(self, name: str) -> float:
        """Summed duration of every closed span named ``name``."""
        return (
            sum(e["dur"] for e in self.events if e["ph"] == "X" and e["name"] == name)
            / 1e6
        )

    def to_chrome(self, other_data: dict | None = None) -> dict:
        """The trace as a Chrome trace-event *JSON object format* payload."""
        data = {"schema_version": TRACE_SCHEMA_VERSION}
        if other_data:
            data.update(other_data)
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": data,
        }

    def write(self, path: str | pathlib.Path, other_data: dict | None = None) -> None:
        """Write the Chrome trace JSON to ``path``."""
        payload = self.to_chrome(other_data)
        pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_trace(path: str | pathlib.Path) -> dict:
    """Load a trace file written by :meth:`SpanTracer.write`."""
    with open(path) as handle:
        return json.load(handle)


def validate_chrome_trace(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a loadable Chrome trace.

    Checks the JSON-object-format envelope and, per event, the fields the
    trace viewers require (``name``/``ph``/``ts`` plus ``dur`` on complete
    events).  Used by the CI smoke step and the test suite.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"traceEvents[{i}].name is not a string")
        if event.get("ph") not in ("X", "i", "B", "E", "M"):
            raise ValueError(f"traceEvents[{i}].ph is {event.get('ph')!r}")
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"traceEvents[{i}].ts is not a number")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}].dur is {dur!r}")


def summarize_events(events: list[dict]) -> list[dict]:
    """Aggregate complete events by span name (the ``trace-summary`` rows).

    Returns one row per distinct span name with call count and
    total / mean / max duration in milliseconds, sorted by total
    descending — the "where did the time go" table.
    """
    stats: dict[str, list[float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        stats.setdefault(event["name"], []).append(float(event["dur"]))
    rows = [
        {
            "span": name,
            "count": len(durs),
            "total_ms": round(sum(durs) / 1e3, 3),
            "mean_ms": round(sum(durs) / len(durs) / 1e3, 3),
            "max_ms": round(max(durs) / 1e3, 3),
        }
        for name, durs in stats.items()
    ]
    rows.sort(key=lambda r: r["total_ms"], reverse=True)
    return rows
