"""Counters, gauges and quantile histograms for the corroboration pipeline.

A :class:`MetricsRegistry` is a plain in-process aggregate — counters are
monotonic floats, gauges are last-write-wins, histograms keep summary
statistics (count / sum / min / max), a fixed set of cumulative buckets
and a *bounded* raw-sample prefix, so a long-lived server's registry
never grows with traffic: per histogram name the memory is one bucket
array plus at most :data:`HISTOGRAM_SAMPLE_CAP` floats, full stop.
:meth:`MetricsRegistry.quantile` serves p50/p95/p99-style summaries from
that state — exact (numpy-percentile identical) while the observation
count is within the sample cap, bucket-interpolated beyond it.
:data:`NULL_METRICS` is the no-op default that instrumented code can
call unconditionally.

Metric names are dotted paths.  The ones the library emits:

=====================================  =====================================
``session.time_points``                time points executed (counter)
``session.rounds``                     RoundRecords committed (counter)
``session.facts_evaluated``            facts committed (counter)
``session.votes_touched``              Σ |signature| × facts per selection
``session.label_flips``                facts whose label overrode Eq. 2
``session.entropy_destroyed``          Σ H(σ(FG)) × n over the picks (bits)
``session.group_size_selected``        facts taken per selection (histogram)
``selection.flush_rounds``             one-sided flush time points (counter)
``selection.delta_h_rounds``           time points that ranked by ΔH
``selection.delta_h_groups_scored``    candidate groups scored by Eq. 9
``selection.candidates_rescored``      (cand, other) pairs recomputed by the
                                       incremental engine (counter)
``selection.candidates_skipped``       pairs served from the pair cache
                                       without recomputation (counter)
``selection.groups_per_round``         active groups per time point (hist.)
``selection.greedy_rounds``            IncEstPS selections (counter)
``baseline.<name>.iterations``         fixpoint iterations per baseline run
``trust.time_points``                  trust vectors recorded (counter)
``trust.facts_marked``                 facts stamped with t(f) (counter)
``serve.requests``                     HTTP requests handled (counter)
``serve.request_seconds``              request latency (histogram)
``serve.requests_by_route.<M> <tpl>``  per route-template requests (counter)
``serve.responses_by_status.<N>xx``    responses per status class (counter)
``serve.errors``                       5xx responses (counter)
``serve.slow_requests``                requests over ``--slow-ms`` (counter)
``serve.refresh_seconds``              service refresh latency (histogram)
``serve.query_seconds``                fact/trust query latency (histogram)
``store.batches``                      ledger batches committed (counter)
``store.votes_ingested``               votes committed to the store
``store.ingest_seconds``               batch ingest latency (histogram)
=====================================  =====================================

Cache traffic on the shared array structures is process-global (the caches
live on the vote matrix, not in any one session), so it lands in the
always-on :func:`global_metrics` registry under ``arrays.*``:
``arrays.group_arrays_cache.{hit,miss}``,
``arrays.group_index_cache.{hit,miss}``,
``arrays.engine_template_cache.{hit,miss}``,
``arrays.deltah_static_cache.{hit,miss}``.
"""

from __future__ import annotations

import bisect
import math
import threading

#: Fixed histogram bucket upper bounds.  Log-spaced over the latency
#: range the serving layer lives in (100 µs … 60 s) — small integers
#: (group sizes, groups per round) land in the low buckets, anything
#: past the last bound goes to the implicit +Inf overflow bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Raw observations retained per histogram before the bucket estimator
#: takes over.  Bounds a long-lived server's per-histogram memory while
#: keeping small-sample quantiles exact (numpy-percentile identical).
HISTOGRAM_SAMPLE_CAP = 512

#: The quantiles every snapshot / exposition summarises.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


class _Histogram:
    """State of one named histogram: moments, buckets, capped samples."""

    __slots__ = ("count", "sum", "min", "max", "buckets", "samples")

    def __init__(self, bounds_len: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        # one slot per bound plus the +Inf overflow slot
        self.buckets = [0] * (bounds_len + 1)
        self.samples: list[float] = []


class NullMetrics:
    """Metrics sink that discards everything — the default."""

    __slots__ = ()

    enabled = False

    def inc(self, name: str, value: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def quantile(self, name: str, q: float) -> float:
        return math.nan

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Process-wide no-op metrics singleton.
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """In-process metric aggregate (see the module docstring for names).

    Args:
        buckets: strictly increasing histogram bucket upper bounds shared
            by every histogram in the registry (default
            :data:`DEFAULT_BUCKETS`); an implicit +Inf overflow bucket is
            always appended.
        sample_cap: raw observations retained per histogram (default
            :data:`HISTOGRAM_SAMPLE_CAP`); quantiles are exact up to the
            cap and bucket-interpolated past it.
    """

    __slots__ = (
        "_counters",
        "_gauges",
        "_hists",
        "_bounds",
        "_sample_cap",
        "_lock",
    )

    enabled = True

    def __init__(
        self,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        sample_cap: int = HISTOGRAM_SAMPLE_CAP,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram buckets must be non-empty")
        if sample_cap < 2:
            raise ValueError("sample_cap must be >= 2")
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, _Histogram] = {}
        self._bounds = bounds
        self._sample_cap = int(sample_cap)
        # Handler threads of the threaded HTTP server bump one shared
        # registry; read-modify-write updates must not lose increments.
        # Reentrant because the summary readers compose locked methods.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        # The lock is process-local; the parallel sweep pickles obs
        # bundles into worker cells, so drop it and rebuild on unpickle.
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "hists": self._hists,
                "bounds": self._bounds,
                "sample_cap": self._sample_cap,
            }

    def __setstate__(self, state: dict) -> None:
        self._counters = state["counters"]
        self._gauges = state["gauges"]
        self._hists = state["hists"]
        self._bounds = state["bounds"]
        self._sample_cap = state["sample_cap"]
        self._lock = threading.RLock()

    @property
    def bucket_bounds(self) -> tuple[float, ...]:
        """The registry's shared bucket upper bounds (without +Inf)."""
        return self._bounds

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        value = float(value)
        with self._lock:
            state = self._hists.get(name)
            if state is None:
                state = self._hists[name] = _Histogram(len(self._bounds))
            state.count += 1
            state.sum += value
            if value < state.min:
                state.min = value
            if value > state.max:
                state.max = value
            state.buckets[bisect.bisect_left(self._bounds, value)] += 1
            if len(state.samples) < self._sample_cap:
                state.samples.append(value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float:
        """Current value of a gauge (NaN if never set)."""
        return self._gauges.get(name, math.nan)

    def histogram_buckets(self, name: str) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf.

        The Prometheus ``_bucket{le=...}`` series of the histogram; an
        unknown name returns the empty list.
        """
        with self._lock:
            state = self._hists.get(name)
            if state is None:
                return []
            out: list[tuple[float, int]] = []
            cumulative = 0
            for bound, count in zip((*self._bounds, math.inf), state.buckets):
                cumulative += count
                out.append((bound, cumulative))
            return out

    def quantile(self, name: str, q: float) -> float:
        """The ``q``-quantile (0 ≤ q ≤ 1) of the histogram ``name``.

        Exact (linear-interpolated order statistics, the numpy
        ``percentile`` default) while the histogram holds at most
        ``sample_cap`` observations; past the cap, linear interpolation
        within the cumulative fixed buckets, clamped to the observed
        [min, max].  NaN for an unknown name.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(name, q)

    def _quantile_locked(self, name: str, q: float) -> float:
        state = self._hists.get(name)
        if state is None or state.count == 0:
            return math.nan
        if state.count <= len(state.samples):
            ordered = sorted(state.samples)
            position = q * (len(ordered) - 1)
            lower = int(position)
            upper = min(lower + 1, len(ordered) - 1)
            fraction = position - lower
            return ordered[lower] + fraction * (ordered[upper] - ordered[lower])
        # Bucket path: rank the target observation, walk the cumulative
        # counts, interpolate linearly inside the bucket that holds it.
        target = q * state.count
        cumulative = 0
        previous_bound = state.min
        for bound, count in zip((*self._bounds, math.inf), state.buckets):
            if count == 0:
                if bound != math.inf:
                    previous_bound = max(previous_bound, min(bound, state.max))
                continue
            if cumulative + count >= target:
                if bound == math.inf:
                    return state.max
                lower = max(state.min, previous_bound)
                upper = min(state.max, bound)
                fraction = (target - cumulative) / count
                return lower + fraction * (upper - lower)
            cumulative += count
            previous_bound = max(previous_bound, min(bound, state.max))
        return state.max

    def histogram_summary(self, name: str) -> dict | None:
        """count/sum/min/max/mean plus p50/p95/p99 for one histogram."""
        with self._lock:
            state = self._hists.get(name)
            if state is None:
                return None
            summary = {
                "count": state.count,
                "sum": state.sum,
                "min": state.min,
                "max": state.max,
                "mean": state.sum / state.count if state.count else math.nan,
            }
            for q in SUMMARY_QUANTILES:
                summary[f"p{int(q * 100)}"] = self._quantile_locked(name, q)
            return summary

    def reset(self) -> None:
        """Drop every recorded metric (tests and long-lived processes)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()

    def snapshot(self) -> dict:
        """All metrics as one JSON-friendly dict (histograms summarised).

        Backward-compatible: histogram entries keep the historical
        ``count``/``sum``/``min``/``max``/``mean`` keys and add the
        ``p50``/``p95``/``p99`` quantile summaries.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: self.histogram_summary(name) for name in self._hists
                },
            }


#: Always-on registry for process-global instrumentation (array-cache
#: traffic).  A counter bump is a dict lookup plus a float add, paid once
#: per cache access — not per time point — so it stays on unconditionally.
_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-global always-on registry (``arrays.*`` cache metrics)."""
    return _GLOBAL
