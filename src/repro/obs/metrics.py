"""Counters, gauges and histogram summaries for the corroboration pipeline.

A :class:`MetricsRegistry` is a plain in-process aggregate — counters are
monotonic floats, gauges are last-write-wins, histograms keep summary
statistics (count / sum / min / max) rather than buckets, which is all the
per-run analyses here need.  :data:`NULL_METRICS` is the no-op default
that instrumented code can call unconditionally.

Metric names are dotted paths.  The ones the library emits:

=====================================  =====================================
``session.time_points``                time points executed (counter)
``session.rounds``                     RoundRecords committed (counter)
``session.facts_evaluated``            facts committed (counter)
``session.votes_touched``              Σ |signature| × facts per selection
``session.label_flips``                facts whose label overrode Eq. 2
``session.entropy_destroyed``          Σ H(σ(FG)) × n over the picks (bits)
``session.group_size_selected``        facts taken per selection (histogram)
``selection.flush_rounds``             one-sided flush time points (counter)
``selection.delta_h_rounds``           time points that ranked by ΔH
``selection.delta_h_groups_scored``    candidate groups scored by Eq. 9
``selection.candidates_rescored``      (cand, other) pairs recomputed by the
                                       incremental engine (counter)
``selection.candidates_skipped``       pairs served from the pair cache
                                       without recomputation (counter)
``selection.groups_per_round``         active groups per time point (hist.)
``selection.greedy_rounds``            IncEstPS selections (counter)
``baseline.<name>.iterations``         fixpoint iterations per baseline run
``trust.time_points``                  trust vectors recorded (counter)
``trust.facts_marked``                 facts stamped with t(f) (counter)
=====================================  =====================================

Cache traffic on the shared array structures is process-global (the caches
live on the vote matrix, not in any one session), so it lands in the
always-on :func:`global_metrics` registry under ``arrays.*``:
``arrays.group_arrays_cache.{hit,miss}``,
``arrays.group_index_cache.{hit,miss}``,
``arrays.engine_template_cache.{hit,miss}``,
``arrays.deltah_static_cache.{hit,miss}``.
"""

from __future__ import annotations

import math


class NullMetrics:
    """Metrics sink that discards everything — the default."""

    __slots__ = ()

    enabled = False

    def inc(self, name: str, value: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Process-wide no-op metrics singleton.
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """In-process metric aggregate (see the module docstring for names)."""

    __slots__ = ("_counters", "_gauges", "_hists")

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, sum, min, max]
        self._hists: dict[str, list[float]] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        state = self._hists.get(name)
        if state is None:
            self._hists[name] = [1.0, float(value), float(value), float(value)]
            return
        state[0] += 1.0
        state[1] += value
        if value < state[2]:
            state[2] = float(value)
        if value > state[3]:
            state[3] = float(value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def reset(self) -> None:
        """Drop every recorded metric (tests and long-lived processes)."""
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()

    def snapshot(self) -> dict:
        """All metrics as one JSON-friendly dict (histograms summarised)."""
        histograms = {
            name: {
                "count": int(state[0]),
                "sum": state[1],
                "min": state[2],
                "max": state[3],
                "mean": state[1] / state[0] if state[0] else math.nan,
            }
            for name, state in self._hists.items()
        }
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": histograms,
        }


#: Always-on registry for process-global instrumentation (array-cache
#: traffic).  A counter bump is a dict lookup plus a float add, paid once
#: per cache access — not per time point — so it stays on unconditionally.
_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-global always-on registry (``arrays.*`` cache metrics)."""
    return _GLOBAL
