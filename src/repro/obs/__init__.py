"""Observability for the corroboration pipeline: tracing, metrics, ledger.

The paper's algorithm is defined by *per-round* dynamics — which fact
groups IncEstHeu picks, how much entropy each round destroys, how each
source's multi-value trust trajectory moves — and this package makes
those dynamics inspectable without touching the numerics:

* :mod:`repro.obs.trace` — nestable span tracer with monotonic timings
  and Chrome trace-event / Perfetto JSON export;
* :mod:`repro.obs.metrics` — counters / gauges / histogram summaries
  (cache traffic, groups per round, votes touched, entropy destroyed,
  per-iteration deltas of the iterative baselines);
* :mod:`repro.obs.runlog` — an append-only JSONL run ledger with one
  record per round / iteration (selection decisions, trust snapshots,
  label flips).

The three sinks travel together as an :class:`Obs` bundle.  The default
bundle, :data:`NULL_OBS`, is wired to process-wide no-op singletons: a
disabled call site costs an attribute load and a discarded method call,
allocates nothing, and never reads algorithm state — so the untraced
path stays bit-identical and within timing noise of the uninstrumented
code (the equivalence tests and ``BENCH_core.json`` hold this).

Instrumented entry points accept the bundle explicitly::

    from repro import IncEstimate, motivating_example
    from repro.obs import make_obs

    obs = make_obs(trace=True, runlog="run.jsonl")
    result = IncEstimate(obs=obs).run(motivating_example())
    obs.tracer.write("trace.json")      # load in ui.perfetto.dev
    obs.runlog.close()

or via the CLI flags ``--trace`` / ``--runlog`` / ``--log-level`` on
``repro corroborate`` and ``repro experiment`` (see
``docs/observability.md``).
"""

from __future__ import annotations

import dataclasses
import logging
import pathlib
import sys
from typing import IO

from repro.obs.context import (
    coerce_trace_id,
    current_trace_id,
    new_trace_id,
    trace_scope,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HISTOGRAM_SAMPLE_CAP,
    NULL_METRICS,
    SUMMARY_QUANTILES,
    MetricsRegistry,
    NullMetrics,
    global_metrics,
)
from repro.obs.prom import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.runlog import (
    NULL_RUNLOG,
    RUNLOG_SCHEMA_VERSION,
    JsonlRunLog,
    NullRunLog,
    read_runlog,
    summarize_records,
    validate_runlog_file,
    validate_runlog_records,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullSpan,
    NullTracer,
    Span,
    SpanTracer,
    load_trace,
    summarize_events,
    validate_chrome_trace,
)


@dataclasses.dataclass(frozen=True)
class Obs:
    """The observability bundle instrumented code carries around.

    Frozen so a bundle can serve as a dataclass-field default (e.g. on
    :class:`~repro.core.selection.SelectionContext`) and be shared across
    sessions without aliasing surprises; the sinks it points to do the
    accumulating.

    Attributes:
        tracer: span sink (:data:`NULL_TRACER` or a :class:`SpanTracer`).
        metrics: metric sink (:data:`NULL_METRICS` or a registry).
        runlog: ledger sink (:data:`NULL_RUNLOG` or a JSONL ledger).
        enabled: precomputed "any sink is real" flag — hot paths branch on
            this once per round instead of probing each sink.
    """

    tracer: NullTracer | SpanTracer = NULL_TRACER
    metrics: NullMetrics | MetricsRegistry = NULL_METRICS
    runlog: NullRunLog | JsonlRunLog = NULL_RUNLOG
    enabled: bool = dataclasses.field(init=False, default=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "enabled",
            self.tracer.enabled or self.metrics.enabled or self.runlog.enabled,
        )

    def close(self) -> None:
        """Close the sinks that own resources (currently the ledger)."""
        self.runlog.close()


#: The shared all-no-op bundle — the default of every instrumented API.
NULL_OBS = Obs()


def make_obs(
    trace: bool = False,
    runlog: str | pathlib.Path | IO[str] | None = None,
    metrics: bool | None = None,
) -> Obs:
    """Build an :class:`Obs` bundle from simple switches.

    Args:
        trace: collect spans into a fresh :class:`SpanTracer` (export with
            ``obs.tracer.write(path)``).
        runlog: path or open text handle for an append-only JSONL ledger.
        metrics: attach a fresh :class:`MetricsRegistry`; defaults to on
            whenever tracing or a ledger is requested (the snapshot rides
            along in the trace's ``otherData``), off otherwise.

    ``make_obs()`` with no arguments returns :data:`NULL_OBS` itself.
    """
    if not trace and runlog is None and not metrics:
        return NULL_OBS
    if metrics is None:
        metrics = trace or runlog is not None
    return Obs(
        tracer=SpanTracer() if trace else NULL_TRACER,
        metrics=MetricsRegistry() if metrics else NULL_METRICS,
        runlog=JsonlRunLog(runlog) if runlog is not None else NULL_RUNLOG,
    )


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
#: Root logger name of the whole library.
LOGGER_NAME = "repro"

#: Marker attribute identifying the handler :func:`configure_logging` owns.
_HANDLER_MARK = "_repro_obs_handler"


def get_logger(name: str | None = None) -> logging.Logger:
    """The library logger, or a child of it.

    Modules call ``get_logger(__name__)``; anything not already under the
    ``repro`` namespace is parented beneath it so one
    :func:`configure_logging` call governs all library output.
    """
    if name is None or name == LOGGER_NAME:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def configure_logging(
    level: int | str = "warning", stream: IO[str] | None = None
) -> logging.Logger:
    """Point the ``repro`` logger at ``stream`` (default stderr) at ``level``.

    Idempotent: re-configuring replaces the handler this function installed
    earlier rather than stacking duplicates, and never touches handlers an
    embedding application added itself.  Progress output of the experiment
    harness and CLI flows through this logger (``--log-level`` on the CLI),
    keeping stdout clean for actual results.
    """
    if isinstance(level, str):
        numeric = logging.getLevelName(level.upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {level!r}")
        level = numeric
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    return logger


__all__ = [
    "DEFAULT_BUCKETS",
    "HISTOGRAM_SAMPLE_CAP",
    "LOGGER_NAME",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_RUNLOG",
    "NULL_SPAN",
    "NULL_TRACER",
    "PROMETHEUS_CONTENT_TYPE",
    "RUNLOG_SCHEMA_VERSION",
    "SUMMARY_QUANTILES",
    "TRACE_SCHEMA_VERSION",
    "JsonlRunLog",
    "MetricsRegistry",
    "NullMetrics",
    "NullRunLog",
    "NullSpan",
    "NullTracer",
    "Obs",
    "Span",
    "SpanTracer",
    "coerce_trace_id",
    "configure_logging",
    "current_trace_id",
    "get_logger",
    "global_metrics",
    "load_trace",
    "make_obs",
    "new_trace_id",
    "parse_prometheus_text",
    "read_runlog",
    "render_prometheus",
    "sanitize_metric_name",
    "summarize_events",
    "summarize_records",
    "trace_scope",
    "validate_chrome_trace",
    "validate_runlog_file",
    "validate_runlog_records",
]
