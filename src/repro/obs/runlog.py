"""Append-only JSONL run ledger: the provenance of every trust estimate.

Dong et al.'s Knowledge-Based Trust line of work argues that a trust score
without the evidence trail that produced it is unauditable; the run ledger
keeps that trail for this library.  One JSON object per line, written in
execution order, so a finished file replays the run: which fact groups the
selection strategy committed at each time point, under which trust vector,
with how much entropy destroyed, and (for the iterative baselines) how
each fixpoint iteration moved.

Record kinds (all carry ``kind``; the header is always the first line of
an appended block):

``runlog_header``
    ``schema_version`` — bump when any record shape changes.
``run_start``
    ``method``, ``facts``, ``groups``, ``sources`` — one per corroboration
    run.
``trust``
    ``time_point``, ``trust`` (source → σi(s)) — the vector the facts
    selected at that time point were evaluated with; the final vector
    (Table 5's) is emitted once more at finalize time.
``round``
    ``time_point``, ``signature`` (list of ``[source, symbol]`` pairs),
    ``probability``, ``label``, ``num_facts``, ``facts``,
    ``entropy_destroyed`` (H(σ(FG)) × n, bits), ``label_flip`` (label
    overrode the Equation 2 threshold) — exactly one per
    :class:`~repro.core.incestimate.RoundRecord`, reconciling field by
    field.
``run_end``
    ``method``, ``time_points``, ``rounds``, ``facts_evaluated``,
    ``label_flips``.
``iteration``
    ``method``, ``iteration`` plus per-method convergence extras
    (``label_flips``, ``max_trust_delta``, ``converged``) — one per
    fixpoint iteration of TwoEstimate / ThreeEstimate / TruthFinder.
``ingest_report``
    ``source``, ``policy``, ``rows_read``, ``rows_kept``, ``rows_dropped``,
    ``reasons`` (reason code → count) and the itemised ``issues`` — the
    :class:`~repro.resilience.errors.IngestReport` of one validated ingest.
``method_failure``
    ``method``, ``error_type``, ``error``, ``seconds`` — a supervised sweep
    isolated this method's failure (see
    :mod:`repro.resilience.supervisor`); the method's partial ``iteration``
    / ``round`` records precede it in the ledger.
``checkpoint``
    ``event`` (``save`` / ``restore``), ``time_point`` — the
    checkpoint/resume trail of a ``--checkpoint`` run.
``ingest_batch``
    ``store``, ``batch_id``, ``batch_kind`` (``import`` / ``votes``),
    ``rows_read``, ``rows_kept``, ``new_facts``, ``new_sources`` — one
    committed batch in the persistent vote ledger (:mod:`repro.store`).
``refresh``
    ``policy``, ``action`` (``full`` / ``incremental`` / ``none`` /
    ``skipped``), ``epoch``, ``dirty_facts``, ``entropy_mass``,
    ``seconds`` — one refresh decision of the corroboration service
    (:mod:`repro.serve`); ``skipped`` means the circuit breaker was open
    and the pending backlog was left for a later refresh.
``refresh_failed``
    ``policy``, ``reason`` (``refresh_failed`` / ``deadline_exceeded``),
    ``error_type``, ``error``, ``seconds``, ``breaker`` (the breaker
    snapshot after recording the failure) — a guarded refresh raised;
    the ingested batch stayed committed and the breaker absorbed the
    failure instead of the client seeing a raw 500.
``startup_recovery``
    ``store``, ``torn_batches``, ``orphan_labels``, ``pending`` — the
    crash-recovery reconciliation report of one service startup
    (:meth:`repro.store.ledger.VoteLedger.reconcile`).
``drain``
    ``state`` — the service entered graceful drain (SIGTERM): new writes
    are rejected, in-flight requests finish, telemetry is flushed.
``serve_request``
    ``request_method``, ``path``, ``status``, ``seconds`` — one handled
    HTTP request of the serving API.

``ingest_batch``, ``refresh`` and ``serve_request`` records emitted while
a request trace is bound (:func:`repro.obs.trace_scope`) additionally
carry the optional ``trace_id`` field, joining one request's records
across the HTTP, service and store layers; records from batch CLI runs
omit it, so those ledgers stay byte-identical.
``shard_start``
    ``shard`` (cell index), ``label`` — opens one shard's block in a
    merged parallel-sweep ledger (:mod:`repro.parallel.merge`); the
    shard's own records follow verbatim, in shard-local order.
``shard_merge``
    ``shards``, ``records``, ``failures`` — closes a shard merge: how many
    cells were merged, how many shard records were replayed, and how many
    cells ended as isolated failures.  Merges happen in cell order, so a
    sharded ledger is deterministic across worker counts.
``dependence_report``
    ``sources``, ``candidate_pairs``, ``scored_pairs``,
    ``truncated_pairs``, ``flagged``, ``min_lift``, ``min_shared`` (plus
    the optional ``top`` flagged pairs) — one copy-detection scan of
    :func:`repro.analysis.dependence.copying_pairs`: how many source
    pairs passed the min-shared-false prefilter, how many the candidate
    cap truncated, and how many ended flagged as likely copiers.

:data:`NULL_RUNLOG` is the no-op default; :class:`JsonlRunLog` appends to
a file (``mode="a"``: re-running a command extends the ledger, it never
rewrites history).

Crash-safety: the ledger is append-only, so it cannot go through the
write-temp-then-replace helper the whole-file artifacts use.  Instead
every record is a single ``write`` of one complete line followed by a
``flush``, so a kill can lose or truncate at most the final line — and
:func:`read_runlog` takes ``tolerate_truncation=True`` to drop exactly
that torn tail when auditing a ledger left behind by a crash.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import IO

#: Bump when any record shape changes.
RUNLOG_SCHEMA_VERSION = 1

#: Required fields per record kind (beyond ``kind`` itself).
_REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "runlog_header": ("schema_version",),
    "run_start": ("method", "facts", "groups", "sources"),
    "trust": ("time_point", "trust"),
    "round": (
        "time_point",
        "signature",
        "probability",
        "label",
        "num_facts",
        "facts",
        "entropy_destroyed",
        "label_flip",
    ),
    "run_end": ("method", "time_points", "rounds", "facts_evaluated", "label_flips"),
    "iteration": ("method", "iteration"),
    "ingest_report": (
        "source",
        "policy",
        "rows_read",
        "rows_kept",
        "rows_dropped",
        "reasons",
    ),
    "method_failure": ("method", "error_type", "error", "seconds"),
    "checkpoint": ("event", "time_point"),
    "ingest_batch": (
        "store",
        "batch_id",
        "batch_kind",
        "rows_read",
        "rows_kept",
        "new_facts",
        "new_sources",
    ),
    "refresh": (
        "policy",
        "action",
        "epoch",
        "dirty_facts",
        "entropy_mass",
        "seconds",
    ),
    "refresh_failed": (
        "policy",
        "reason",
        "error_type",
        "error",
        "seconds",
        "breaker",
    ),
    "startup_recovery": ("store", "torn_batches", "orphan_labels", "pending"),
    "drain": ("state",),
    "serve_request": ("request_method", "path", "status", "seconds"),
    "shard_start": ("shard", "label"),
    "shard_merge": ("shards", "records", "failures"),
    "dependence_report": (
        "sources",
        "candidate_pairs",
        "scored_pairs",
        "truncated_pairs",
        "flagged",
        "min_lift",
        "min_shared",
    ),
}


class NullRunLog:
    """Ledger that writes nothing — the default."""

    __slots__ = ()

    enabled = False

    def emit(self, kind: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullRunLog":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Process-wide no-op ledger singleton.
NULL_RUNLOG = NullRunLog()


class JsonlRunLog:
    """Append-only JSONL ledger bound to a file path or open handle."""

    enabled = True

    def __init__(self, path_or_handle: str | pathlib.Path | IO[str]) -> None:
        if hasattr(path_or_handle, "write"):
            self._handle: IO[str] = path_or_handle  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(path_or_handle, "a")
            self._owns_handle = True
        self._lock = threading.Lock()
        self.emit("runlog_header", schema_version=RUNLOG_SCHEMA_VERSION)

    def emit(self, kind: str, **fields) -> None:
        """Append one record; tuples (signatures) serialise as JSON arrays.

        One complete line per ``write`` plus a ``flush``, so a killed
        process can leave at most one torn line at the end of the file
        (which :func:`read_runlog` can tolerate) — never interleaved or
        buffered-away records.  The write is locked: the threaded HTTP
        server emits ``serve_request`` records from concurrent handler
        threads into one shared ledger.
        """
        record = {"kind": kind, **fields}
        line = json.dumps(record) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()

    def __getstate__(self) -> dict:
        # The lock is process-local; the parallel sweep pickles cells
        # holding buffer-backed ledgers, so drop it and rebuild.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlRunLog":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_runlog(
    path: str | pathlib.Path, *, tolerate_truncation: bool = False
) -> list[dict]:
    """Parse a runlog file into its records (blank lines skipped).

    With ``tolerate_truncation=True`` a JSON parse error on the *final*
    line is swallowed — a process killed mid-``write`` leaves exactly one
    torn trailing line, and a crash audit must still read everything
    before it.  A parse error anywhere else always raises: that is
    corruption, not truncation.
    """
    records = []
    lines: list[tuple[int, str]] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                lines.append((number, line))
    for index, (number, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if tolerate_truncation and index == len(lines) - 1:
                break
            raise
    return records


def validate_runlog_records(records: list[dict]) -> None:
    """Raise ``ValueError`` unless ``records`` form a schema-valid ledger.

    Checks the header (first record, matching schema version), that every
    record is an object with a known ``kind``, and that each kind carries
    its required fields.  Used by the CI smoke step and the test suite.
    """
    if not records:
        raise ValueError("runlog is empty")
    header = records[0]
    if header.get("kind") != "runlog_header":
        raise ValueError(f"first record kind is {header.get('kind')!r}, "
                         "expected 'runlog_header'")
    if header.get("schema_version") != RUNLOG_SCHEMA_VERSION:
        raise ValueError(
            f"unexpected runlog schema_version: {header.get('schema_version')!r}"
        )
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(f"records[{i}] is not an object")
        kind = record.get("kind")
        required = _REQUIRED_FIELDS.get(kind)  # type: ignore[arg-type]
        if required is None:
            raise ValueError(f"records[{i}] has unknown kind {kind!r}")
        missing = [field for field in required if field not in record]
        if missing:
            raise ValueError(f"records[{i}] ({kind}) is missing {missing}")
        if kind == "round":
            if not isinstance(record["facts"], list):
                raise ValueError(f"records[{i}].facts is not a list")
            if record["num_facts"] != len(record["facts"]):
                raise ValueError(
                    f"records[{i}].num_facts {record['num_facts']} != "
                    f"len(facts) {len(record['facts'])}"
                )


def validate_runlog_file(path: str | pathlib.Path) -> int:
    """Validate the ledger at ``path``; returns the number of records."""
    records = read_runlog(path)
    validate_runlog_records(records)
    return len(records)


def summarize_records(records: list[dict]) -> dict:
    """Aggregate a ledger for display: record counts plus round totals."""
    kinds: dict[str, int] = {}
    facts = 0
    entropy = 0.0
    flips = 0
    dependence_flagged = 0
    dependence_truncated = 0
    for record in records:
        kind = record.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "round":
            facts += record["num_facts"]
            entropy += record["entropy_destroyed"]
            if record["label_flip"]:
                flips += record["num_facts"]
        elif kind == "dependence_report":
            dependence_flagged += record.get("flagged", 0)
            dependence_truncated += record.get("truncated_pairs", 0)
    summary = {
        "records_by_kind": kinds,
        "facts_evaluated": facts,
        "entropy_destroyed_bits": round(entropy, 6),
        "label_flip_facts": flips,
    }
    if kinds.get("dependence_report"):
        summary["dependence_flagged_pairs"] = dependence_flagged
        summary["dependence_truncated_pairs"] = dependence_truncated
    return summary
