"""Request-scoped correlation: one trace ID through every layer.

The serving stack spans three packages — the HTTP handler accepts a vote
batch, the service refreshes labels, the store commits the batch — and a
production incident needs all three stories joined.  This module carries
one opaque trace ID across them on a :class:`contextvars.ContextVar`, so
the propagation costs no signature changes and is safe under the threaded
HTTP server (each request handler thread gets its own context).

Usage at the edge (the HTTP handler, the load generator)::

    with trace_scope(new_trace_id()) as trace_id:
        ...  # everything below sees current_trace_id() == trace_id

Downstream emitters (`serve_request` / `refresh` / `ingest_batch` runlog
records, `serve.*` / `store.*` spans, the access log) stamp
:func:`current_trace_id` into their records; outside any scope it is
``None`` and the field is simply omitted — batch runs stay byte-identical
to the pre-telemetry ledgers.
"""

from __future__ import annotations

import contextlib
import contextvars
import re
import uuid
from collections.abc import Iterator

#: Trace IDs must be short header-safe tokens (hex IDs qualify).
_TRACE_ID_OK = re.compile(r"[A-Za-z0-9._\-]{1,64}$")

_CURRENT: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID (random, collision-safe per server)."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace ID of the enclosing :func:`trace_scope`, if any."""
    return _CURRENT.get()


def coerce_trace_id(candidate: str | None) -> str:
    """``candidate`` if it is a valid propagated ID, else a fresh one.

    The HTTP layer feeds the raw ``X-Trace-Id`` request header through
    this: a well-formed caller-supplied ID is honoured (cross-service
    correlation), anything missing or junk is replaced, never trusted.
    """
    if candidate is not None:
        candidate = candidate.strip()
        if candidate and _TRACE_ID_OK.match(candidate):
            return candidate
    return new_trace_id()


@contextlib.contextmanager
def trace_scope(trace_id: str | None = None) -> Iterator[str]:
    """Bind ``trace_id`` (default: a fresh one) for the enclosed block."""
    if trace_id is None:
        trace_id = new_trace_id()
    token = _CURRENT.set(trace_id)
    try:
        yield trace_id
    finally:
        _CURRENT.reset(token)
