"""Ordered merge of per-shard observability output into the parent bundle.

A sharded sweep produces one in-memory ledger / span list / counter set
per cell.  Completion order is nondeterministic, so nothing is written to
the parent sinks while shards run; instead the runner collects every
shard's output and this module replays it **in cell order**, which makes
the merged ledger a deterministic function of the work — byte-identical
across worker counts (modulo the wall-clock ``seconds`` fields some record
kinds carry).

Merged ledger layout (see :mod:`repro.obs.runlog` for the record schema)::

    ... parent records ...
    {"kind": "shard_start", "shard": 0, "label": "cell-0"}
    ... shard 0's records, verbatim, in shard-local order ...
    {"kind": "shard_start", "shard": 1, "label": "cell-1"}
    ... shard 1's records ...
    {"kind": "shard_merge", "shards": 2, "records": 37, "failures": 0}

Traces merge with each shard's events on its own Chrome ``tid`` (shard
index + 2; the parent keeps ``tid`` 1), so a Perfetto view of a sharded
run shows one lane per cell.  Metric counters sum — counters are the only
metric kind with well-defined cross-process aggregation, so gauges and
histograms stay shard-local by design.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.obs import Obs

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (shards ↔ merge)
    from repro.parallel.shards import CellOutcome

#: ``tid`` of the first shard lane in a merged trace (1 is the parent).
_FIRST_SHARD_TID = 2


def merge_shard_runlogs(obs: Obs, outcomes: Sequence["CellOutcome"]) -> int:
    """Replay shard ledger records into ``obs.runlog`` in cell order.

    Each shard's block is framed by a ``shard_start`` record; one
    ``shard_merge`` summary closes the merge.  Returns the number of
    shard records replayed (framing excluded).
    """
    if not obs.runlog.enabled:
        return 0
    replayed = 0
    failures = 0
    for outcome in outcomes:
        obs.runlog.emit("shard_start", shard=outcome.index, label=outcome.label)
        if outcome.failed:
            failures += 1
        for record in outcome.runlog_records:
            fields = {k: v for k, v in record.items() if k != "kind"}
            obs.runlog.emit(record["kind"], **fields)
            replayed += 1
    obs.runlog.emit(
        "shard_merge",
        shards=len(outcomes),
        records=replayed,
        failures=failures,
    )
    return replayed


def merge_shard_traces(obs: Obs, outcomes: Sequence["CellOutcome"]) -> int:
    """Append shard spans to ``obs.tracer``, one Chrome lane per shard.

    Shard timestamps are relative to each shard tracer's origin, so lanes
    align at zero rather than at wall-clock submission time — the per-cell
    anatomy is what the lanes are for, not cross-cell scheduling.  Returns
    the number of events merged.
    """
    if not obs.tracer.enabled:
        return 0
    merged = 0
    for outcome in outcomes:
        tid = _FIRST_SHARD_TID + outcome.index
        for event in outcome.trace_events:
            obs.tracer.events.append({**event, "tid": tid})
            merged += 1
    return merged


def merge_shard_counters(obs: Obs, outcomes: Sequence["CellOutcome"]) -> int:
    """Sum shard metric counters into ``obs.metrics``; returns counters seen."""
    if not obs.metrics.enabled:
        return 0
    merged = 0
    for outcome in outcomes:
        for name, value in sorted(outcome.counters.items()):
            obs.metrics.inc(name, value)
            merged += 1
    return merged


def merge_shard_outcomes(
    obs: Obs, outcomes: Sequence["CellOutcome"], label: str = "shard"
) -> None:
    """Merge every observability stream of a finished shard batch.

    No-op on the default :data:`~repro.obs.NULL_OBS` bundle — the
    untraced sharded path allocates and writes nothing, matching the
    library-wide zero-cost-when-disabled contract.
    """
    if not obs.enabled:
        return
    with obs.tracer.span(f"{label}.merge", shards=len(outcomes)):
        merge_shard_runlogs(obs, outcomes)
        merge_shard_traces(obs, outcomes)
        merge_shard_counters(obs, outcomes)
