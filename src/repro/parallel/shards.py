"""Process-pool shard execution: the ``(dataset, method, seed, config)`` cell.

Every sweep in this repository — the Table 4 harness, the Figure 3
synthetic grid, the ML cross-validation folds — is a list of *cells* that
are independent given their inputs.  :class:`ShardRunner` executes such a
list on a ``spawn``-context :class:`~concurrent.futures.ProcessPoolExecutor`
while preserving three contracts the test suite pins:

**Determinism.**  A cell function must be a pure function of its payload
(seeds included — see :mod:`repro.parallel.seeds`), so the merged outcome
list is bit-identical for any worker count, including the inline
``workers=1`` path.  The runner always assembles outcomes in cell order,
never completion order.

**Isolation.**  A raising cell becomes a structured failure outcome (the
same shape PR 3's supervisor gives failed methods), not a dead sweep; a
*hard-crashed* worker process (the pool breaks) degrades every cell still
in flight to a failure outcome instead of propagating
``BrokenProcessPool``.  Pass ``isolate_errors=False`` for fail-fast.

**Observability.**  Each cell runs with its own in-memory observability
bundle; the per-shard ledgers, trace spans and metric counters are merged
back into the parent :class:`~repro.obs.Obs` in cell order under
``shard_start`` / ``shard_merge`` framing records
(:mod:`repro.parallel.merge`), so a sharded run leaves one ordered ledger.

``spawn`` (not ``fork``) is deliberate: workers start from a fresh
interpreter, so they cannot inherit parent file descriptors — in
particular an open SQLite connection of a :class:`~repro.store.VoteLedger`,
which is neither fork-safe nor picklable.  Cells that need a ledger-backed
dataset carry a :class:`DatasetSpec` (the *path*), and each worker opens
and closes its own connection.
"""

from __future__ import annotations

import dataclasses
import io
import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any

from repro.model.dataset import Dataset
from repro.obs import (
    NULL_METRICS,
    NULL_OBS,
    NULL_RUNLOG,
    NULL_TRACER,
    JsonlRunLog,
    MetricsRegistry,
    Obs,
    SpanTracer,
    get_logger,
)
from repro.resilience.errors import ResilienceError

_LOG = get_logger(__name__)

#: A cell function: module-level (picklable by reference), taking the
#: cell payload and a per-shard observability bundle.
CellFn = Callable[[Any, Obs], Any]


class ShardError(ResilienceError):
    """A shard failed under ``isolate_errors=False`` (fail-fast sweeps)."""


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``--workers`` value: ``None``/``0`` means the CPU count."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0 or None, got {workers}")
    return workers


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """A picklable *reference* to a dataset, materialised inside a worker.

    Sharded sweeps must not close over live resources: an open
    :class:`~repro.store.VoteLedger` holds a ``sqlite3.Connection`` that
    cannot cross a process boundary.  A spec carries only the path; each
    worker opens its own handle, reads, and closes it again.
    """

    kind: str  #: ``"json"`` (a saved dataset file) or ``"ledger"`` (SQLite).
    path: str

    _KINDS = ("json", "ledger")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown dataset spec kind {self.kind!r}; expected one of "
                f"{self._KINDS}"
            )

    @classmethod
    def from_json(cls, path: str | os.PathLike) -> "DatasetSpec":
        """A spec for a dataset JSON written by ``save_dataset``."""
        return cls(kind="json", path=os.fspath(path))

    @classmethod
    def from_ledger(cls, path: str | os.PathLike) -> "DatasetSpec":
        """A spec for a persistent vote ledger (:mod:`repro.store`).

        The returned spec never touches the caller's connection: workers
        materialising it open a fresh read connection on their side of the
        ``spawn`` boundary and close it before returning.
        """
        return cls(kind="ledger", path=os.fspath(path))

    def materialize(self) -> Dataset:
        """Load the dataset this spec points at (fresh handles only)."""
        if self.kind == "json":
            from repro.model.io import load_dataset

            return load_dataset(self.path)
        from repro.store import VoteLedger

        with VoteLedger(self.path) as ledger:
            return ledger.export_dataset()


def resolve_dataset(dataset: Dataset | DatasetSpec) -> Dataset:
    """Materialise ``dataset`` if it is a spec; return it unchanged if not."""
    if isinstance(dataset, DatasetSpec):
        return dataset.materialize()
    return dataset


@dataclasses.dataclass
class CellOutcome:
    """One executed cell: its value or isolated failure, plus shard obs.

    ``value`` is whatever the cell function returned (``None`` on
    failure); ``runlog_records`` / ``trace_events`` / ``counters`` hold the
    shard-local observability output awaiting the ordered merge.
    """

    index: int
    label: str
    value: Any = None
    seconds: float = 0.0
    error: str | None = None
    error_type: str | None = None
    runlog_records: list[dict] = dataclasses.field(default_factory=list)
    trace_events: list[dict] = dataclasses.field(default_factory=list)
    counters: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclasses.dataclass(frozen=True)
class _Capture:
    """Which observability sinks the parent wants shards to record."""

    runlog: bool = False
    trace: bool = False
    metrics: bool = False

    @classmethod
    def for_obs(cls, obs: Obs) -> "_Capture":
        return cls(
            runlog=obs.runlog.enabled,
            trace=obs.tracer.enabled,
            metrics=obs.metrics.enabled,
        )


def _execute_cell(
    fn: CellFn, index: int, label: str, payload: Any, capture: _Capture
) -> CellOutcome:
    """Run one cell under an in-memory shard bundle; never raises.

    Module-level so the ``spawn`` pool can import it by reference, and the
    *same* function serves the inline ``workers=1`` path — both paths run
    bit-identical code, which is what makes worker-count invariance a
    structural property rather than a hope.
    """
    buffer = io.StringIO() if capture.runlog else None
    shard_obs = Obs(
        tracer=SpanTracer() if capture.trace else NULL_TRACER,
        metrics=MetricsRegistry() if capture.metrics else NULL_METRICS,
        runlog=JsonlRunLog(buffer) if buffer is not None else NULL_RUNLOG,
    )
    outcome = CellOutcome(index=index, label=label)
    started = time.perf_counter()
    try:
        outcome.value = fn(payload, shard_obs)
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        outcome.error = str(exc)
        outcome.error_type = type(exc).__name__
    outcome.seconds = time.perf_counter() - started
    if buffer is not None:
        import json

        for line in buffer.getvalue().splitlines():
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "runlog_header":
                continue  # the parent ledger already has one
            outcome.runlog_records.append(record)
    if capture.trace:
        outcome.trace_events = list(shard_obs.tracer.events)
    if capture.metrics:
        outcome.counters = dict(shard_obs.metrics.snapshot().get("counters", {}))
    return outcome


class ShardRunner:
    """Execute independent cells across a ``spawn`` process pool.

    Args:
        workers: pool size; ``None``/``0`` means the machine's CPU count,
            ``1`` runs every cell inline (no pool — the serial reference
            path, bit-identical to any pooled run).
        isolate_errors: when ``True`` (default) a raising cell becomes a
            failure :class:`CellOutcome`; when ``False`` the first failure
            raises :class:`ShardError` after all cells settle.
        obs: parent observability bundle.  Shard ledgers / spans / counters
            are merged into it in cell order after the run.
        label: prefix for default cell labels and the merge framing record.
    """

    def __init__(
        self,
        workers: int | None = 1,
        *,
        isolate_errors: bool = True,
        obs: Obs = NULL_OBS,
        label: str = "shard",
    ) -> None:
        self.workers = resolve_workers(workers)
        self.isolate_errors = isolate_errors
        self.obs = obs
        self.label = label

    def run(
        self,
        fn: CellFn,
        payloads: Sequence[Any],
        labels: Sequence[str] | None = None,
    ) -> list[CellOutcome]:
        """Run ``fn`` over every payload; outcomes ordered by cell index."""
        from repro.parallel.merge import merge_shard_outcomes

        if labels is None:
            labels = [f"{self.label}-{i}" for i in range(len(payloads))]
        if len(labels) != len(payloads):
            raise ValueError(
                f"{len(labels)} labels for {len(payloads)} payloads"
            )
        capture = _Capture.for_obs(self.obs)
        pool_size = min(self.workers, len(payloads))
        if pool_size <= 1:
            outcomes = [
                _execute_cell(fn, i, labels[i], payload, capture)
                for i, payload in enumerate(payloads)
            ]
        else:
            outcomes = self._run_pooled(fn, payloads, labels, capture, pool_size)
        merge_shard_outcomes(self.obs, outcomes, label=self.label)
        for outcome in outcomes:
            if outcome.failed:
                _LOG.warning(
                    "%s failed after %.3fs (%s: %s)%s",
                    outcome.label,
                    outcome.seconds,
                    outcome.error_type,
                    outcome.error,
                    " — continuing sweep" if self.isolate_errors else "",
                )
        if not self.isolate_errors:
            first = next((o for o in outcomes if o.failed), None)
            if first is not None:
                raise ShardError(
                    f"{first.label} failed ({first.error_type}): {first.error}"
                )
        return outcomes

    def _run_pooled(
        self,
        fn: CellFn,
        payloads: Sequence[Any],
        labels: Sequence[str],
        capture: _Capture,
        pool_size: int,
    ) -> list[CellOutcome]:
        """The process-pool path; broken workers degrade to failure rows."""
        context = multiprocessing.get_context("spawn")
        outcomes: list[CellOutcome | None] = [None] * len(payloads)
        with ProcessPoolExecutor(
            max_workers=pool_size, mp_context=context
        ) as pool:
            futures = {
                pool.submit(
                    _execute_cell, fn, i, labels[i], payload, capture
                ): i
                for i, payload in enumerate(payloads)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    try:
                        outcomes[index] = future.result()
                    except Exception as exc:  # pool/pickling/crash failures
                        outcomes[index] = CellOutcome(
                            index=index,
                            label=labels[index],
                            error=(
                                f"{exc} (hint: cells must be picklable — "
                                "pass live resources such as a VoteLedger "
                                "as a DatasetSpec path, not a handle)"
                            )
                            if "pickle" in str(exc).lower()
                            else str(exc),
                            error_type=type(exc).__name__,
                        )
        return [outcome for outcome in outcomes if outcome is not None]
