"""Parallel sharded execution for sweeps (see ``docs/parallelism.md``).

The package turns the unit of work implicit everywhere in this repository
— a ``(dataset, method, seed, config)`` cell — into an explicit shard that
a ``spawn``-context process pool can execute, under three contracts:

* **deterministic seeding** (:mod:`repro.parallel.seeds`): per-cell seeds
  are derived from a root seed and the cell's identity, never from the
  schedule, so an N-worker run is bit-identical to the serial run;
* **shard isolation** (:mod:`repro.parallel.shards`): a failed or crashed
  cell becomes a structured failure outcome, not a dead sweep, reusing the
  resilience layer's failure-row semantics;
* **ordered observability merge** (:mod:`repro.parallel.merge`): per-shard
  run ledgers, trace spans and metric counters merge back into the parent
  bundle in cell order under ``shard_start`` / ``shard_merge`` framing.

Entry points that accept ``workers=``: :func:`repro.eval.harness.run_methods`,
the Figure 3 sweeps in :mod:`repro.experiments.synthetic_exp`, ML
cross-validation (:mod:`repro.ml.crossval`), and the CLI's
``experiment --workers N``.
"""

from repro.parallel.merge import (
    merge_shard_counters,
    merge_shard_outcomes,
    merge_shard_runlogs,
    merge_shard_traces,
)
from repro.parallel.seeds import derive_seed, spawn_seeds
from repro.parallel.shards import (
    CellOutcome,
    DatasetSpec,
    ShardError,
    ShardRunner,
    resolve_dataset,
    resolve_workers,
)

__all__ = [
    "CellOutcome",
    "DatasetSpec",
    "ShardError",
    "ShardRunner",
    "derive_seed",
    "merge_shard_counters",
    "merge_shard_outcomes",
    "merge_shard_runlogs",
    "merge_shard_traces",
    "resolve_dataset",
    "resolve_workers",
    "spawn_seeds",
]
