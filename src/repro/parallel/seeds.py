"""Deterministic per-shard seed derivation (the parallel seeding contract).

A sharded sweep is only trustworthy if its random streams are a property
of the *work*, never of the *schedule*: the seed a cell runs with must
depend only on the cell's identity (root seed + a stable derivation path),
not on which worker executes it, in what order, or how many workers exist.
This module pins that contract.

Derivation follows the :class:`numpy.random.SeedSequence` spawning
discipline — the same mechanism NumPy documents for parallel stream
generation — with one addition: path components may be strings (sweep
names, dataset labels) as well as integers, each encoded to ``spawn_key``
words through SHA-256 so the mapping is stable across processes, platforms
and Python hash randomization.

    >>> derive_seed(0, "figure3a", 4, 0) == derive_seed(0, "figure3a", 4, 0)
    True
    >>> derive_seed(0, "figure3a", 4, 0) != derive_seed(0, "figure3a", 4, 1)
    True

The derived value is a 64-bit integer, suitable both for
``numpy.random.default_rng`` and for the ``seed=`` parameters of the
dataset generators.  ``SeedSequence`` hashing is documented to be
reproducible across NumPy versions, so derived seeds are durable — a
sweep's cells can be re-run years later, alone or inside any worker pool,
and see identical streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: One derivation-path component: a sweep label, index, or parameter.
PathComponent = int | str


def _encode_component(component: PathComponent) -> tuple[int, ...]:
    """Stable ``spawn_key`` words (uint32) for one path component.

    Integers are encoded directly (sign carried in a marker word) so that
    small indices stay cheap and readable in debuggers; strings go through
    SHA-256, making the encoding independent of ``PYTHONHASHSEED``.
    """
    if isinstance(component, bool):  # bool is an int subclass; be explicit
        raise TypeError("seed path components must be int or str, not bool")
    if isinstance(component, (int, np.integer)):
        value = int(component)
        sign = 0 if value >= 0 else 1
        magnitude = abs(value)
        words = [sign]
        while True:
            words.append(magnitude & 0xFFFFFFFF)
            magnitude >>= 32
            if not magnitude:
                return tuple(words)
    if isinstance(component, str):
        digest = hashlib.sha256(component.encode("utf-8")).digest()
        # Two uint32 words (64 bits of the digest) are plenty: collisions
        # would need 2^32 distinct labels in one derivation path.
        return (
            2,  # marker separating the string space from the int space
            int.from_bytes(digest[0:4], "big"),
            int.from_bytes(digest[4:8], "big"),
        )
    raise TypeError(
        f"seed path components must be int or str, got {type(component).__name__}"
    )


def derive_seed(root_seed: int, *path: PathComponent) -> int:
    """The 64-bit seed of the cell identified by ``path`` under ``root_seed``.

    Pure function of its arguments: any process, any worker count, any
    execution order derives the same value.  Distinct paths give
    statistically independent streams (the :class:`~numpy.random.SeedSequence`
    guarantee for distinct spawn keys).
    """
    if root_seed < 0:
        raise ValueError(f"root_seed must be non-negative, got {root_seed}")
    spawn_key: tuple[int, ...] = ()
    for component in path:
        spawn_key += _encode_component(component)
    sequence = np.random.SeedSequence(entropy=int(root_seed), spawn_key=spawn_key)
    high, low = (int(word) for word in sequence.generate_state(2, np.uint32))
    return (high << 32) | low


def spawn_seeds(root_seed: int, count: int, *path: PathComponent) -> list[int]:
    """``count`` sibling seeds under one derivation path (repeat seeds).

    ``spawn_seeds(root, n, *p)[i] == derive_seed(root, *p, i)`` — the list
    form exists so sweep code can ask for "the seeds of this cell's
    repeats" in one call and tests can assert the identity.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [derive_seed(root_seed, *path, index) for index in range(count)]
