"""The motivating example — paper Table 1.

Five sources {s1..s5} and twelve restaurants {r1..r12}; most restaurants
receive only affirmative statements, yet five of them (r4, r5, r6, r10,
r12) are actually closed.  This tiny instance is the paper's running
example: Section 2 walks TwoEstimate, BayesEstimate and the (simplified)
incremental strategy through it, and Table 2 reports their precision /
recall / accuracy.

The expected headline numbers (used by our tests and the Table 2 bench):

* ground-truth source accuracies {1, 0.8, 1, 0.5, 0.625},
* TwoEstimate: everything true except r12; trust {1, 1, 0.8, 0.9, 1};
  precision 0.64, recall 1, accuracy 0.67,
* the incremental strategy: precision 0.78, recall 1, accuracy 0.83, and
  round-by-round trust vectors {-,1,1,0,1} → {0,1,1,0,1} → final
  {0.67, 1, 1, 0.7, 1}.
"""

from __future__ import annotations

from repro.model.dataset import Dataset

#: Source column order of Table 1.
SOURCES = ["s1", "s2", "s3", "s4", "s5"]

#: Vote rows of Table 1 (symbols aligned with :data:`SOURCES`).
ROWS: dict[str, list[str]] = {
    "r1": ["-", "T", "-", "T", "-"],
    "r2": ["T", "T", "-", "T", "T"],
    "r3": ["T", "-", "T", "-", "T"],
    "r4": ["-", "-", "-", "T", "T"],
    "r5": ["T", "-", "-", "T", "-"],
    "r6": ["-", "-", "F", "T", "-"],
    "r7": ["-", "T", "-", "T", "T"],
    "r8": ["-", "T", "-", "T", "T"],
    "r9": ["-", "-", "T", "-", "T"],
    "r10": ["-", "-", "-", "T", "T"],
    "r11": ["-", "-", "T", "T", "T"],
    "r12": ["-", "F", "F", "T", "-"],
}

#: Ground truth of Table 1's last column.
TRUTH: dict[str, bool] = {
    "r1": True,
    "r2": True,
    "r3": True,
    "r4": False,
    "r5": False,
    "r6": False,
    "r7": True,
    "r8": True,
    "r9": True,
    "r10": False,
    "r11": True,
    "r12": False,
}

#: Ground-truth trust scores as *quoted* in Section 2 ("the global trust
#: scores for all the sources are {1, 0.8, 1, 0.5, 0.625}").  Note these are
#: inconsistent with Table 1 itself: s1 casts a T vote on r5, which the
#: table labels false, so s1's accuracy cannot be 1 (it is 2/3).  The values
#: actually derivable from Table 1 are in :data:`DERIVED_SOURCE_ACCURACY`;
#: our tests check the derived ones.
PAPER_QUOTED_SOURCE_ACCURACY: dict[str, float] = {
    "s1": 1.0,
    "s2": 0.8,
    "s3": 1.0,
    "s4": 0.5,
    "s5": 0.625,
}

#: Source accuracies computed from Table 1 (fraction of each source's votes
#: consistent with the ground-truth column).
DERIVED_SOURCE_ACCURACY: dict[str, float] = {
    "s1": 2 / 3,
    "s2": 1.0,
    "s3": 1.0,
    "s4": 0.5,
    "s5": 0.75,
}


def motivating_example() -> Dataset:
    """Build the Table 1 dataset (all 12 facts labelled)."""
    return Dataset.from_rows(SOURCES, ROWS, truth=TRUTH, name="motivating-example")
