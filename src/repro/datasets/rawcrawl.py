"""Raw-crawl simulator: listings with presentation variants.

The paper's crawl "yielded 42,969 restaurant listings but contains numerous
duplicates due to various presentation of the same listing" which the
dedup pipeline (Section 6.2.1) reduced to 36,916.  This module generates a
miniature crawl with exactly that flavour: a universe of ground-truth
restaurants, per-source listings whose *strings* vary in the ways real
listing sites differ (abbreviations, ordinals, articles, punctuation), and
CLOSED flags for the sources that mark closures.  It exists to exercise
:mod:`repro.dedup` end-to-end — the full-scale experiments use the directly
generated vote matrix of :mod:`repro.datasets.restaurants` instead.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.datasets.restaurants import PAPER_PROFILES, SourceProfile
from repro.dedup.resolution import RawListing
from repro.parallel.seeds import derive_seed

_NAME_HEADS = [
    "Danny's", "Golden", "Grand", "Little", "Royal", "Blue", "Red", "Lucky",
    "Mama's", "Uncle Joe's", "Silver", "Jade", "Corner", "Village", "Sunset",
    "Harbor", "Garden", "Empire", "Liberty", "Hudson",
]
_NAME_CORES = [
    "Sea Palace", "Dragon", "Bistro", "Trattoria", "Noodle House", "Grill",
    "Diner", "Curry House", "Taqueria", "Pizzeria", "Sushi Bar", "Deli",
    "Steakhouse", "Cantina", "Brasserie", "Kitchen", "Tavern", "Chophouse",
]
_STREETS = [
    ("46", "Street"), ("44", "Street"), ("9", "Avenue"), ("Mott", "Street"),
    ("Bleecker", "Street"), ("Mulberry", "Street"), ("Lexington", "Avenue"),
    ("7", "Avenue"), ("Spring", "Street"), ("Delancey", "Street"),
    ("23", "Street"), ("Broadway", ""),
]
_DIRECTIONS = ["West", "East", ""]

_SPELLED = {
    "7": "Seventh", "9": "Ninth", "23": "Twenty-Third",
    "44": "Forty-Fourth", "46": "Forty-Sixth",
}
_SUFFIXED = {"7": "7th", "9": "9th", "23": "23rd", "44": "44th", "46": "46th"}


@dataclasses.dataclass(frozen=True)
class Restaurant:
    """Ground-truth restaurant used by the crawl simulator."""

    entity_id: str
    name: str
    number: int
    direction: str
    street: tuple[str, str]
    open_for_business: bool


def _render_address(
    restaurant: Restaurant, style: int
) -> str:
    """One of several presentation styles for the same address."""
    street_name, street_type = restaurant.street
    direction = restaurant.direction
    if style == 1 and street_name in _SUFFIXED:
        street_name = _SUFFIXED[street_name]
    elif style == 2 and street_name in _SPELLED:
        street_name = _SPELLED[street_name]
    if style == 1 and direction:
        direction = direction[0] + "."
    if style == 2 and street_type == "Street":
        street_type = "St"
    city = ["New York", "NYC", "New York, NY"][style % 3]
    parts = [str(restaurant.number), direction, street_name, street_type]
    body = " ".join(p for p in parts if p)
    return f"{body}, {city}"


def _render_name(name: str, style: int, rng: np.random.Generator) -> str:
    """Presentation variants of the restaurant name."""
    rendered = name
    if style == 1:
        rendered = rendered.replace("'", "")
    elif style == 2 and rng.random() < 0.5:
        rendered = f"The {rendered}"
    if style == 2 and rng.random() < 0.3:
        rendered = rendered.upper()
    return rendered


def generate_universe(
    num_restaurants: int = 300,
    true_fraction: float = 0.57,
    seed: int = 46,
) -> list[Restaurant]:
    """Generate a ground-truth restaurant universe."""
    rng = np.random.default_rng(seed)
    restaurants: list[Restaurant] = []
    # Names may repeat across the city (two "Golden Dragon"s are fine —
    # dedup blocks on the address), but a (name, address) pair must be
    # unique or the ground truth would be ambiguous.
    seen: set[tuple[str, int, tuple[str, str], str]] = set()
    while len(restaurants) < num_restaurants:
        name = (
            f"{_NAME_HEADS[rng.integers(len(_NAME_HEADS))]} "
            f"{_NAME_CORES[rng.integers(len(_NAME_CORES))]}"
        )
        number = int(rng.integers(1, 900))
        direction = _DIRECTIONS[rng.integers(len(_DIRECTIONS))]
        street = _STREETS[rng.integers(len(_STREETS))]
        key = (name, number, street, direction)
        if key in seen:
            continue
        seen.add(key)
        restaurants.append(
            Restaurant(
                entity_id=f"truth{len(restaurants)}",
                name=name,
                number=number,
                direction=direction,
                street=street,
                open_for_business=bool(rng.random() < true_fraction),
            )
        )
    return restaurants


def generate_raw_crawl(
    restaurants: list[Restaurant] | None = None,
    profiles: tuple[SourceProfile, ...] = PAPER_PROFILES,
    seed: int = 46,
) -> tuple[list[RawListing], dict[str, bool]]:
    """Simulate the crawl: per-source listings with presentation variants.

    Returns the raw listings plus the ground truth (entity id → open).
    Each source lists a restaurant with probability scaled from its
    Table 3 coverage; sources with F quotas mark a small share of their
    closed listings CLOSED; each listing's strings are rendered in a
    per-source presentation style, which is what plants the duplicates the
    dedup pipeline must resolve.
    """
    if restaurants is None:
        restaurants = generate_universe(seed=seed)
    # Child stream per the seeding contract: path-derived, not seed
    # arithmetic (seed+1 collides with another generator's root seed).
    rng = np.random.default_rng(derive_seed(seed, "raw-crawl"))
    listings: list[RawListing] = []
    truth = {r.entity_id: r.open_for_business for r in restaurants}
    for source_index, profile in enumerate(profiles):
        style = source_index % 3
        # Higher coverage for closed listings at inaccurate sources, like
        # the calibrated world: stale listings concentrate where curation
        # is weakest.
        closed_bias = 1.0 if profile.accuracy >= 0.8 else 1.6
        for restaurant in restaurants:
            rate = profile.coverage * (1.0 if restaurant.open_for_business else closed_bias)
            if rng.random() >= min(rate * 1.2, 0.95):
                continue
            marks_closed = (
                not restaurant.open_for_business
                and profile.f_votes > 0
                and rng.random() < 0.35
            )
            listings.append(
                RawListing(
                    source=profile.name,
                    name=_render_name(restaurant.name, style, rng),
                    address=_render_address(restaurant, style),
                    closed=marks_closed,
                    entity_hint=restaurant.entity_id,
                )
            )
    # A slice of same-source duplicate rows (re-crawled variants), the
    # "various presentation of the same listing" the paper mentions.
    extra = rng.choice(len(listings), size=max(1, len(listings) // 8), replace=False)
    for index in extra:
        base = listings[int(index)]
        alt_style = (hash(base.source) + 1) % 3
        restaurant = next(r for r in restaurants if r.entity_id == base.entity_hint)
        listings.append(
            RawListing(
                source=base.source,
                name=_render_name(restaurant.name, alt_style, rng),
                address=_render_address(restaurant, alt_style),
                closed=base.closed,
                entity_hint=base.entity_hint,
            )
        )
    return listings, truth
