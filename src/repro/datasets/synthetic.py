"""Synthetic dataset generator — paper Section 6.3.1.

The model: all sources are *positive* (trust above 0.5) and split into

* **accurate** sources — trust σ(s) ~ U[0.7, 1.0]; each has a probability
  m(s) ~ U[0, 0.5] of casting an F vote for a (F-vote-eligible) false fact;
* **inaccurate** sources — trust σ(s) ~ U[0.5, 0.7]; never cast F votes.

Coverage follows the paper's Equation 11 — inaccurate sources cover more:

    c(s) = 1 − σ(s) + random() · 0.2

Each of the ``num_facts`` facts (paper: 20,000) is independently true or
false with probability 1/2, and a factor η bounds "the percentage of facts
that have F votes": only an η-fraction of the facts (drawn among the false
ones) is *eligible* to receive F votes at all.

Vote semantics (the paper does not spell these out; these choices follow
its error model — accurate sources err only through the F-vote channel
m(s), inaccurate sources only through stale affirmative listings — which
is also what produces the Figure 3 trends):

* a source covers a fact with probability c(s);
* on a covered **true** fact any source casts a T vote with probability
  σ(s) and otherwise abstains (nobody falsely denies an open restaurant);
* on a covered **false** fact an *accurate* source casts an F vote with
  probability m(s) when the fact is F-eligible and otherwise abstains (its
  curation removes stale listings), while an *inaccurate* source always
  casts a stale T vote — no curation is exactly what makes it inaccurate.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.model.dataset import Dataset
from repro.model.matrix import VoteMatrix
from repro.model.votes import Vote


@dataclasses.dataclass(frozen=True)
class SourceSpec:
    """The drawn parameters of one synthetic source."""

    name: str
    trust: float
    coverage: float
    f_vote_probability: float
    accurate: bool

    @property
    def erroneous_t_probability(self) -> float:
        """e(s): probability of a T vote on a covered false fact.

        Accurate sources curate their listings and never affirm a false
        fact; inaccurate sources carry every stale listing they cover.
        """
        return 0.0 if self.accurate else 1.0


@dataclasses.dataclass
class SyntheticWorld:
    """A generated instance plus the parameters that produced it."""

    dataset: Dataset
    specs: list[SourceSpec]
    eta: float

    @property
    def accurate_sources(self) -> list[SourceSpec]:
        return [s for s in self.specs if s.accurate]

    @property
    def inaccurate_sources(self) -> list[SourceSpec]:
        return [s for s in self.specs if not s.accurate]


def draw_source_specs(
    num_accurate: int, num_inaccurate: int, rng: np.random.Generator
) -> list[SourceSpec]:
    """Draw source parameters per the Section 6.3.1 model."""
    if num_accurate < 0 or num_inaccurate < 0:
        raise ValueError("source counts must be non-negative")
    if num_accurate + num_inaccurate == 0:
        raise ValueError("need at least one source")
    specs: list[SourceSpec] = []
    for i in range(num_accurate):
        trust = float(rng.uniform(0.7, 1.0))
        specs.append(
            SourceSpec(
                name=f"acc{i + 1}",
                trust=trust,
                coverage=_coverage(trust, rng),
                f_vote_probability=float(rng.uniform(0.0, 0.5)),
                accurate=True,
            )
        )
    for i in range(num_inaccurate):
        trust = float(rng.uniform(0.5, 0.7))
        specs.append(
            SourceSpec(
                name=f"inacc{i + 1}",
                trust=trust,
                coverage=_coverage(trust, rng),
                f_vote_probability=0.0,
                accurate=False,
            )
        )
    return specs


def _coverage(trust: float, rng: np.random.Generator) -> float:
    """Equation 11: c(s) = 1 − σ(s) + random() · 0.2, kept above a floor."""
    return float(np.clip(1.0 - trust + rng.random() * 0.2, 0.05, 1.0))


def generate_synthetic(
    num_accurate: int = 8,
    num_inaccurate: int = 2,
    num_facts: int = 20_000,
    eta: float = 0.03,
    seed: int = 0,
    name: str | None = None,
) -> SyntheticWorld:
    """Generate a synthetic corroboration problem.

    Args:
        num_accurate / num_inaccurate: source mix (Figure 3(a) varies the
            total with 2 inaccurate; Figure 3(b) varies the inaccurate count
            with 10 total).
        num_facts: paper default 20,000.
        eta: fraction of facts eligible for F votes (Figure 3(c) sweeps
            0.01–0.05).
        seed: RNG seed — generation is fully deterministic given the seed.
    """
    if not 0.0 <= eta <= 1.0:
        raise ValueError(f"eta must be in [0, 1], got {eta}")
    if num_facts < 1:
        raise ValueError(f"num_facts must be positive, got {num_facts}")
    rng = np.random.default_rng(seed)
    specs = draw_source_specs(num_accurate, num_inaccurate, rng)

    truth = rng.random(num_facts) < 0.5
    false_indices = np.flatnonzero(~truth)
    num_eligible = min(round(eta * num_facts), false_indices.size)
    eligible = np.zeros(num_facts, dtype=bool)
    if num_eligible:
        eligible[rng.choice(false_indices, size=num_eligible, replace=False)] = True

    matrix = VoteMatrix()
    fact_ids = [f"f{i}" for i in range(num_facts)]
    for fact in fact_ids:
        matrix.add_fact(fact)
    for spec in specs:
        matrix.add_source(spec.name)
        covered = rng.random(num_facts) < spec.coverage
        roll = rng.random(num_facts)
        # True facts: T vote with probability σ(s).
        t_on_true = covered & truth & (roll < spec.trust)
        # False facts: F with probability m(s) when eligible, else an
        # erroneous T with probability e(s) (disjoint probability bands).
        f_band = spec.f_vote_probability
        f_on_false = covered & ~truth & eligible & (roll < f_band)
        e_band = spec.erroneous_t_probability
        t_on_false = (
            covered
            & ~truth
            & ~f_on_false
            & (roll >= f_band * eligible)
            & (roll < f_band * eligible + e_band)
        )
        for idx in np.flatnonzero(t_on_true):
            matrix.add_vote(fact_ids[idx], spec.name, Vote.TRUE)
        for idx in np.flatnonzero(t_on_false):
            matrix.add_vote(fact_ids[idx], spec.name, Vote.TRUE)
        for idx in np.flatnonzero(f_on_false):
            matrix.add_vote(fact_ids[idx], spec.name, Vote.FALSE)

    dataset = Dataset(
        matrix=matrix,
        truth={fact: bool(t) for fact, t in zip(fact_ids, truth)},
        name=name
        or (
            f"synthetic[{num_accurate}acc+{num_inaccurate}inacc, "
            f"{num_facts}f, eta={eta}]"
        ),
    )
    return SyntheticWorld(dataset=dataset, specs=specs, eta=eta)


# ---------------------------------------------------------------------------
# Sparse web-scale tier
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class SparseSyntheticWorld:
    """A web-scale sparse instance plus its structural parameters.

    ``num_templates`` distinct vote signatures shared by ``num_facts``
    facts: the grouping step collapses the instance to ``num_templates``
    fact groups, which is what makes a million facts tractable — every
    per-group structure stays small while the fact axis, the vote count
    and the source axis are genuinely web-scale.
    """

    dataset: Dataset
    num_templates: int
    num_hubs: int
    votes: int


def generate_sparse_synthetic(
    num_facts: int = 1_000_000,
    num_sources: int = 10_000,
    num_templates: int = 2_400,
    min_voters: int = 2,
    max_voters: int = 6,
    num_hubs: int = 150,
    hub_bias: float = 0.5,
    false_vote_rate: float = 0.2,
    seed: int = 0,
    name: str | None = None,
) -> SparseSyntheticWorld:
    """Generate a sparse million-fact / ten-thousand-source instance.

    The generator is *template-based*: it draws ``num_templates`` vote
    signatures — each a set of 2–6 (source, vote) pairs — and assigns every
    fact to one template.  Facts sharing a template share a signature
    bit-for-bit, so the grouping step produces ``num_templates`` fact
    groups regardless of ``num_facts``; no dense per-source array is ever
    materialised (at 10k sources the matrix also drops packed signature
    codes and grouping runs through signature-tuple bucketing).

    Source selection is hub-biased: each voter slot picks from a small hub
    pool with probability ``hub_bias`` and from the long tail otherwise.
    Hubs are what make templates *share* sources — they bound the size of
    the ΔH pair graph (two groups pair iff they share a voter), so the
    knobs ``num_hubs``/``hub_bias`` directly control the selection
    engine's working set.

    Truth is i.i.d. fair per fact; each template vote is F with
    probability ``false_vote_rate``.  Fully deterministic given ``seed``.
    """
    if num_facts < 1 or num_sources < 1 or num_templates < 1:
        raise ValueError("num_facts, num_sources and num_templates must be positive")
    if num_templates > num_facts:
        raise ValueError(
            f"num_templates ({num_templates}) cannot exceed num_facts ({num_facts})"
        )
    if not 1 <= min_voters <= max_voters <= num_sources:
        raise ValueError(
            f"need 1 <= min_voters <= max_voters <= num_sources, got "
            f"{min_voters}..{max_voters} over {num_sources} sources"
        )
    if not 0 < num_hubs <= num_sources:
        raise ValueError(f"num_hubs must be in [1, {num_sources}], got {num_hubs}")
    if not 0.0 <= hub_bias <= 1.0:
        raise ValueError(f"hub_bias must be in [0, 1], got {hub_bias}")
    if not 0.0 <= false_vote_rate <= 1.0:
        raise ValueError(f"false_vote_rate must be in [0, 1], got {false_vote_rate}")
    rng = np.random.default_rng(seed)
    source_ids = [f"s{i}" for i in range(num_sources)]
    tail = num_sources - num_hubs

    # Draw the template signatures: distinct voters per template, each
    # slot hub-biased, each vote F with probability false_vote_rate.
    templates: list[list[tuple[str, Vote]]] = []
    for _ in range(num_templates):
        k = int(rng.integers(min_voters, max_voters + 1))
        n_hub = int(rng.binomial(k, hub_bias)) if tail else k
        n_hub = min(n_hub, num_hubs)
        voters = rng.choice(num_hubs, size=n_hub, replace=False)
        if k - n_hub:
            voters = np.concatenate(
                (
                    voters,
                    num_hubs + rng.choice(tail, size=k - n_hub, replace=False),
                )
            )
        votes = np.where(rng.random(k) < false_vote_rate, 1, 0)
        templates.append(
            [
                (source_ids[int(v)], Vote.FALSE if f else Vote.TRUE)
                for v, f in zip(voters, votes)
            ]
        )

    template_of = rng.integers(0, num_templates, size=num_facts)
    truth = rng.random(num_facts) < 0.5

    matrix = VoteMatrix()
    for source in source_ids:
        matrix.add_source(source)
    votes_total = 0
    add_votes = matrix.add_votes
    for i in range(num_facts):
        template = templates[template_of[i]]
        add_votes(f"f{i}", template)
        votes_total += len(template)

    dataset = Dataset(
        matrix=matrix,
        truth={f"f{i}": bool(t) for i, t in enumerate(truth)},
        name=name
        or (
            f"sparse-synthetic[{num_facts}f, {num_sources}s, "
            f"{num_templates}g]"
        ),
    )
    return SparseSyntheticWorld(
        dataset=dataset,
        num_templates=num_templates,
        num_hubs=num_hubs,
        votes=votes_total,
    )
