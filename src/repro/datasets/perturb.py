"""Dataset perturbation: controlled corruption for robustness studies.

The paper's evaluation varies *world* parameters (source mix, η); a
robustness question it leaves open is how gracefully the algorithms degrade
when the observed votes themselves are corrupted.  These utilities produce
perturbed copies of a dataset — flipped votes, dropped votes/sources, an
injected copying source — and power the robustness bench.

All functions return a **new** dataset; the input is never mutated.
"""

from __future__ import annotations

import numpy as np

from repro.model.dataset import Dataset
from repro.model.matrix import SourceId, VoteMatrix
from repro.model.votes import Vote


def _copy_matrix(dataset: Dataset) -> VoteMatrix:
    matrix = VoteMatrix()
    for source in dataset.matrix.sources:
        matrix.add_source(source)
    for fact in dataset.matrix.facts:
        matrix.add_fact(fact)
        for source, vote in dataset.matrix.votes_on(fact).items():
            matrix.add_vote(fact, source, vote)
    return matrix


def _rebuild(dataset: Dataset, matrix: VoteMatrix, suffix: str) -> Dataset:
    return Dataset(
        matrix=matrix,
        truth=dict(dataset.truth),
        golden_set=dataset.golden_set,
        name=f"{dataset.name}+{suffix}",
    )


def flip_votes(dataset: Dataset, fraction: float, seed: int = 0) -> Dataset:
    """Flip a uniform fraction of the informative votes (T ↔ F).

    Models transcription/extraction noise: a listing misread as CLOSED or
    a closure flag lost in scraping.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    matrix = VoteMatrix()
    for source in dataset.matrix.sources:
        matrix.add_source(source)
    for fact in dataset.matrix.facts:
        matrix.add_fact(fact)
        for source, vote in dataset.matrix.votes_on(fact).items():
            flipped = vote.flipped() if rng.random() < fraction else vote
            matrix.add_vote(fact, source, flipped)
    return _rebuild(dataset, matrix, f"flip{fraction}")


def drop_votes(dataset: Dataset, fraction: float, seed: int = 0) -> Dataset:
    """Delete a uniform fraction of the informative votes (coverage loss)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    matrix = VoteMatrix()
    for source in dataset.matrix.sources:
        matrix.add_source(source)
    for fact in dataset.matrix.facts:
        matrix.add_fact(fact)
        for source, vote in dataset.matrix.votes_on(fact).items():
            if rng.random() >= fraction:
                matrix.add_vote(fact, source, vote)
    return _rebuild(dataset, matrix, f"drop{fraction}")


def drop_source(dataset: Dataset, source: SourceId) -> Dataset:
    """Remove a source and all its votes (leave-one-source-out)."""
    if source not in set(dataset.matrix.sources):
        raise KeyError(f"unknown source {source!r}")
    matrix = VoteMatrix()
    for s in dataset.matrix.sources:
        if s != source:
            matrix.add_source(s)
    for fact in dataset.matrix.facts:
        matrix.add_fact(fact)
        for s, vote in dataset.matrix.votes_on(fact).items():
            if s != source:
                matrix.add_vote(fact, s, vote)
    return _rebuild(dataset, matrix, f"minus-{source}")


def inject_copier(
    dataset: Dataset,
    original: SourceId,
    name: SourceId = "copier",
    copy_fraction: float = 0.9,
    seed: int = 0,
) -> Dataset:
    """Add a new source that replicates ``original``'s votes.

    The Dong et al. scenario: a copied source looks like independent
    confirmation and inflates corroboration confidence.  The copier
    replicates each of the original's votes with probability
    ``copy_fraction`` (no independent votes of its own).
    """
    if name in set(dataset.matrix.sources):
        raise ValueError(f"source {name!r} already exists")
    if original not in set(dataset.matrix.sources):
        raise KeyError(f"unknown source {original!r}")
    if not 0.0 < copy_fraction <= 1.0:
        raise ValueError(f"copy_fraction must be in (0, 1], got {copy_fraction}")
    rng = np.random.default_rng(seed)
    matrix = _copy_matrix(dataset)
    matrix.add_source(name)
    for fact, vote in dataset.matrix.votes_by(original).items():
        if rng.random() < copy_fraction:
            matrix.add_vote(fact, name, vote)
    return _rebuild(dataset, matrix, f"copier-of-{original}")


def adversarial_source(
    dataset: Dataset,
    name: SourceId = "adversary",
    coverage: float = 0.5,
    seed: int = 0,
) -> Dataset:
    """Add a source that affirms false facts and denies true ones.

    A worst-case stress: trust-aware methods should learn to invert or
    ignore it; voting-based ones cannot.  Requires ground truth.
    """
    if not dataset.truth:
        raise ValueError("adversarial_source needs ground truth")
    if name in set(dataset.matrix.sources):
        raise ValueError(f"source {name!r} already exists")
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    rng = np.random.default_rng(seed)
    matrix = _copy_matrix(dataset)
    matrix.add_source(name)
    for fact, label in dataset.truth.items():
        if rng.random() < coverage:
            matrix.add_vote(fact, name, Vote.FALSE if label else Vote.TRUE)
    return _rebuild(dataset, matrix, "adversary")
