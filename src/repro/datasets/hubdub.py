"""Hubdub-like multi-answer question dataset (paper Section 6.2.6).

The paper's Table 7 re-runs the methods on the Hubdub dataset of Galland et
al. (WSDM 2010): a snapshot of settled prediction-market questions from
hubdub.com with **830 answer-facts from 471 users on 357 questions** and
ample conflicting votes.  The snapshot is not redistributable, so this
module generates a dataset with the same shape:

* each question has 2–4 candidate answers (drawn so the total number of
  answer-facts lands at the target), exactly one of which is correct, and
  a latent *difficulty* d ~ U[0.5, 2.5] — prediction-market questions vary
  wildly in hardness, and difficulty is exactly what Galland et al.'s
  3-Estimates models;
* each user has a latent reliability drawn from a wide Beta mixture
  (including a sub-population of worse-than-random users, as real
  prediction markets have);
* each user answers a random subset of questions, voting for the correct
  answer with probability reliability^difficulty and for a uniformly
  random wrong answer otherwise.

The mixture is tuned so that the best methods land in the paper's error
range (~260 errors out of 830 answer-facts).  The experiment harness
measures the Galland "number of errors" metric via
:func:`repro.model.claims.count_answer_errors`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.model.claims import Question, QuestionSet

#: Shape of the original snapshot (Section 6.2.6).
PAPER_NUM_QUESTIONS = 357
PAPER_NUM_USERS = 471
PAPER_NUM_ANSWER_FACTS = 830


@dataclasses.dataclass
class HubdubWorld:
    """A generated question set plus the latent generation parameters."""

    questions: QuestionSet
    reliabilities: dict[str, float]
    difficulties: dict[str, float]


def generate_hubdub_like(
    num_questions: int = PAPER_NUM_QUESTIONS,
    num_users: int = PAPER_NUM_USERS,
    num_answer_facts: int = PAPER_NUM_ANSWER_FACTS,
    votes_per_user: float = 7.5,
    unreliable_fraction: float = 0.25,
    difficulty_range: tuple[float, float] = (0.5, 2.5),
    seed: int = 830,
) -> HubdubWorld:
    """Generate a Hubdub-shaped multi-answer corroboration problem.

    Args:
        num_questions / num_users / num_answer_facts: dataset shape
            (defaults match the paper's snapshot).
        votes_per_user: mean number of questions each user answers.
        unreliable_fraction: share of users drawn from the low-reliability
            component (Beta(2, 3), mean 0.4 — worse than random on
            multi-answer questions); the rest come from Beta(6, 2.5)
            (mean ≈ 0.7).
        difficulty_range: uniform range of the per-question difficulty
            exponent d; a user answers correctly with probability
            reliability^d.
        seed: RNG seed; generation is deterministic given the seed.
    """
    if num_answer_facts < 2 * num_questions:
        raise ValueError("need at least two answers per question")
    if num_answer_facts > 4 * num_questions:
        raise ValueError("at most four answers per question are generated")
    lo, hi = difficulty_range
    if lo <= 0 or hi < lo:
        raise ValueError(f"invalid difficulty_range {difficulty_range}")
    rng = np.random.default_rng(seed)

    answer_counts = _draw_answer_counts(num_questions, num_answer_facts, rng)
    questions: list[Question] = []
    difficulties: dict[str, float] = {}
    for qi, count in enumerate(answer_counts):
        answers = [f"a{j}" for j in range(count)]
        correct = answers[int(rng.integers(count))]
        question = Question(qid=f"q{qi}", answers=answers, correct=correct)
        questions.append(question)
        difficulties[question.qid] = float(rng.uniform(lo, hi))
    question_set = QuestionSet(questions)

    reliabilities: dict[str, float] = {}
    for ui in range(num_users):
        user = f"u{ui}"
        if rng.random() < unreliable_fraction:
            reliability = float(rng.beta(2.0, 3.0))
        else:
            reliability = float(rng.beta(6.0, 2.5))
        reliabilities[user] = reliability
        num_answered = min(
            num_questions, max(1, int(rng.poisson(votes_per_user)))
        )
        answered = rng.choice(num_questions, size=num_answered, replace=False)
        for qi in answered:
            question = questions[qi]
            p_correct = reliability ** difficulties[question.qid]
            if rng.random() < p_correct:
                chosen = question.correct
            else:
                wrong = [a for a in question.answers if a != question.correct]
                chosen = wrong[int(rng.integers(len(wrong)))]
            question_set.add_user_vote(user, question.qid, chosen)

    return HubdubWorld(
        questions=question_set,
        reliabilities=reliabilities,
        difficulties=difficulties,
    )


def _draw_answer_counts(
    num_questions: int, num_answer_facts: int, rng: np.random.Generator
) -> list[int]:
    """Per-question answer counts in {2, 3, 4} summing to the target."""
    counts = [2] * num_questions
    surplus = num_answer_facts - 2 * num_questions
    # Distribute the surplus one answer at a time over random questions
    # that still have room.
    eligible = list(range(num_questions))
    while surplus > 0:
        idx = int(rng.integers(len(eligible)))
        qi = eligible[idx]
        counts[qi] += 1
        if counts[qi] == 4:
            eligible.pop(idx)
        surplus -= 1
    return counts
