"""Dataset generators: the paper's motivating example, the Section 6.3.1
synthetic model, the restaurant-crawl simulator and the Hubdub-like
multi-answer generator."""

from repro.datasets.hubdub import HubdubWorld, generate_hubdub_like
from repro.datasets.perturb import (
    adversarial_source,
    drop_source,
    drop_votes,
    flip_votes,
    inject_copier,
)
from repro.datasets.rawcrawl import Restaurant, generate_raw_crawl, generate_universe
from repro.datasets.motivating import (
    DERIVED_SOURCE_ACCURACY,
    PAPER_QUOTED_SOURCE_ACCURACY,
    ROWS,
    SOURCES,
    TRUTH,
    motivating_example,
)
from repro.datasets.restaurants import (
    PAPER_PROFILES,
    RestaurantWorld,
    SourceProfile,
    generate_restaurants,
)
from repro.datasets.synthetic import (
    SourceSpec,
    SparseSyntheticWorld,
    SyntheticWorld,
    draw_source_specs,
    generate_sparse_synthetic,
    generate_synthetic,
)

__all__ = [
    "DERIVED_SOURCE_ACCURACY",
    "HubdubWorld",
    "PAPER_PROFILES",
    "PAPER_QUOTED_SOURCE_ACCURACY",
    "ROWS",
    "RestaurantWorld",
    "SOURCES",
    "SourceProfile",
    "SourceSpec",
    "SparseSyntheticWorld",
    "SyntheticWorld",
    "TRUTH",
    "Restaurant",
    "adversarial_source",
    "draw_source_specs",
    "drop_source",
    "drop_votes",
    "flip_votes",
    "generate_hubdub_like",
    "generate_raw_crawl",
    "generate_universe",
    "inject_copier",
    "generate_restaurants",
    "generate_sparse_synthetic",
    "generate_synthetic",
    "motivating_example",
]
