"""Restaurant-listing world — the paper's real-world dataset, simulated.

The paper crawled six restaurant sources for the greater New York City area
in February 2012 (36,916 deduplicated listings) and hand-verified a golden
set of 601 listings from three zip codes.  The crawl is gone (the dataset
URL is dead), so this module provides a *generative simulator calibrated to
every statistic the paper reports*:

* Table 3 coverage:      YP .59, 4sq .24, MP .20, OT .07, CS .50, Yelp .35
* Table 3 golden accuracy: .59, .78, .93, .96, .62, .84
* F-vote counts (Section 6.2.1): Foursquare 10, Menupages 256, Yelp 425
* golden set: 601 listings = 340 open + 261 closed

The corroboration algorithms only ever see the vote matrix, so a matrix
with matching coverage / accuracy / overlap / F-vote marginals exercises
the identical code paths (DESIGN.md Section 3 records this substitution).

Model.  Each listing (fact) is open (true) with probability ``true_fraction``
and carries a latent *popularity* u ~ U[0, 1] shared across sources — a
popular Manhattan restaurant is crawled by everyone, which reproduces the
positive source overlap of Table 3.  From each source's target coverage,
accuracy and F quota we derive its T-vote rates on open and closed listings
(see :meth:`SourceProfile.t_vote_rates`); coverage indicators are Bernoulli
with a popularity tilt (0.5 + u) that preserves the expected rates.  The
F quotas are planted on closed listings the source did not already list.
Orphan facts (listings no source produced — impossible in a real crawl,
where facts *are* source listings) are assigned one T vote from a
coverage-weighted source.

Golden set.  The paper's golden set came from three dense zip codes, so it
is drawn from the top-popularity stratum, and — matching the Voting /
Counting rows of Table 4, which require a visible share of F-vote listings
among the golden closed restaurants — a configurable number of the closed
golden listings is drawn from the F-voted ones (the authors' curated-
Manhattan sources flag closures precisely in such areas).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.model.dataset import Dataset
from repro.model.matrix import VoteMatrix
from repro.model.votes import Vote


@dataclasses.dataclass(frozen=True)
class SourceProfile:
    """Calibration targets of one crawled source (paper Table 3)."""

    name: str
    coverage: float
    accuracy: float
    f_votes: int

    def t_vote_rates(self, num_facts: int, true_fraction: float) -> tuple[float, float]:
        """(rate on open listings, rate on closed listings) for T votes.

        Derived so that expected coverage and golden accuracy match the
        targets: with V = coverage·N total votes of which ``accuracy``·V are
        correct and ``f_votes`` of the correct ones are F votes, the T votes
        split into a = accuracy·V − f_votes on open listings and
        b = (1 − accuracy)·V on closed ones.
        """
        total_votes = self.coverage * num_facts
        correct = self.accuracy * total_votes
        on_open = correct - self.f_votes
        on_closed = total_votes - correct
        num_open = true_fraction * num_facts
        num_closed = (1.0 - true_fraction) * num_facts
        if on_open < 0 or num_open <= 0 or num_closed <= 0:
            raise ValueError(f"infeasible profile for source {self.name}")
        rate_open = on_open / num_open
        rate_closed = on_closed / num_closed
        if rate_open > 1.0 or rate_closed > 1.0:
            raise ValueError(
                f"source {self.name}: derived T-vote rates exceed 1 "
                f"({rate_open:.3f}, {rate_closed:.3f}); adjust true_fraction"
            )
        return rate_open, rate_closed


#: The six crawled sources with their Table 3 calibration targets.
PAPER_PROFILES: tuple[SourceProfile, ...] = (
    SourceProfile("YellowPages", 0.59, 0.59, 0),
    SourceProfile("Foursquare", 0.24, 0.78, 10),
    SourceProfile("MenuPages", 0.20, 0.93, 256),
    SourceProfile("OpenTable", 0.07, 0.96, 0),
    SourceProfile("CitySearch", 0.50, 0.62, 0),
    SourceProfile("Yelp", 0.35, 0.84, 425),
)

#: Dataset sizes reported in Section 6.2.1.
PAPER_NUM_FACTS = 36_916
PAPER_GOLDEN_TRUE = 340
PAPER_GOLDEN_FALSE = 261


@dataclasses.dataclass
class RestaurantWorld:
    """A generated restaurant dataset plus its calibration profiles."""

    dataset: Dataset
    profiles: tuple[SourceProfile, ...]
    popularity: dict[str, float]

    def coverage_row(self) -> dict[str, float]:
        """Realised coverage per source (Table 3, top block)."""
        return {p.name: self.dataset.matrix.coverage(p.name) for p in self.profiles}

    def overlap_matrix(self) -> list[dict[str, object]]:
        """Realised pairwise overlap (Table 3, middle block)."""
        names = [p.name for p in self.profiles]
        rows: list[dict[str, object]] = []
        for a in names:
            row: dict[str, object] = {"source": a}
            for b in names:
                row[b] = self.dataset.matrix.overlap(a, b)
            rows.append(row)
        return rows

    def accuracy_row(self) -> dict[str, float | None]:
        """Realised golden-set accuracy per source (Table 3, bottom block)."""
        return {p.name: self.dataset.source_accuracy(p.name) for p in self.profiles}

    def f_vote_counts(self) -> dict[str, int]:
        """Realised F-vote count per source (Section 6.2.1 reports 10/256/425)."""
        counts: dict[str, int] = {}
        for profile in self.profiles:
            votes = self.dataset.matrix.votes_by(profile.name)
            counts[profile.name] = sum(1 for v in votes.values() if v is Vote.FALSE)
        return counts


def generate_restaurants(
    num_facts: int = PAPER_NUM_FACTS,
    true_fraction: float = 0.57,
    golden_true: int = PAPER_GOLDEN_TRUE,
    golden_false: int = PAPER_GOLDEN_FALSE,
    golden_false_with_f_votes: int = 100,
    popularity_quantile: float = 0.70,
    f_vote_pool_share: float = 0.4,
    profiles: tuple[SourceProfile, ...] = PAPER_PROFILES,
    seed: int = 99,
) -> RestaurantWorld:
    """Generate a restaurant world calibrated to the paper's statistics.

    Args:
        num_facts: total deduplicated listings (paper: 36,916).  F quotas
            scale proportionally when a smaller world is requested.
        true_fraction: global fraction of open listings.
        golden_true / golden_false: golden-set composition (340 / 261).
        golden_false_with_f_votes: how many golden closed listings are
            drawn from F-voted listings (Table 4 calibration, see module
            docstring).  Capped by availability.
        popularity_quantile: golden facts come from listings with latent
            popularity above this quantile ("three dense zip codes").
        f_vote_pool_share: fraction of each source's F quota drawn from the
            shared "confirmed closed" pool (F-vote correlation across
            sources); the rest lands on independently chosen closed
            listings.
        seed: RNG seed; generation is deterministic given the seed.
    """
    if num_facts < 100:
        raise ValueError("num_facts must be at least 100")
    if not 0.0 < true_fraction < 1.0:
        raise ValueError(f"true_fraction must be in (0, 1), got {true_fraction}")
    rng = np.random.default_rng(seed)
    scale = num_facts / PAPER_NUM_FACTS
    # F-vote quotas scale with the world; the scaled profiles are used
    # consistently for rate derivation, planting and reporting.
    profiles = tuple(
        dataclasses.replace(p, f_votes=round(p.f_votes * scale)) for p in profiles
    )

    truth = rng.random(num_facts) < true_fraction
    popularity = rng.random(num_facts)
    tilt = 0.5 + popularity  # E[tilt] = 1, so expected rates are preserved.
    fact_ids = [f"listing{i}" for i in range(num_facts)]

    matrix = VoteMatrix()
    for fact in fact_ids:
        matrix.add_fact(fact)

    t_votes: dict[str, np.ndarray] = {}
    for profile in profiles:
        matrix.add_source(profile.name)
        rate_open, rate_closed = profile.t_vote_rates(num_facts, true_fraction)
        prob = np.where(truth, rate_open, rate_closed) * tilt
        voted = rng.random(num_facts) < np.clip(prob, 0.0, 1.0)
        t_votes[profile.name] = voted

    # Plant the F-vote quotas on closed listings the source did not list as
    # open.  F votes from different sources are correlated through a shared
    # "confirmed closed" pool: a restaurant that visibly shut down tends to
    # be flagged CLOSED by several curated sources, which is what gives some
    # listings an F majority (the small set TwoEstimate and Voting do label
    # false, Section 6.2.2).
    f_quota = {p.name: p.f_votes for p in profiles}
    closed_pool_size = max(1, round(0.7 * max(f_quota.values(), default=1)))
    closed_candidates = np.flatnonzero(~truth)
    # Confirmed closures skew popular: a defunct but once-popular venue is
    # exactly the listing the curated sources notice and flag — and the one
    # the high-coverage aggregators still carry as open.
    pool_weights = popularity[closed_candidates] ** 2
    pool_weights = pool_weights / pool_weights.sum()
    confirmed_closed = rng.choice(
        closed_candidates,
        size=min(closed_pool_size, closed_candidates.size),
        replace=False,
        p=pool_weights,
    )
    f_votes: dict[str, np.ndarray] = {}
    for profile in profiles:
        quota = f_quota[profile.name]
        mask = np.zeros(num_facts, dtype=bool)
        if quota:
            pool = confirmed_closed[~t_votes[profile.name][confirmed_closed]]
            from_pool = min(round(f_vote_pool_share * quota), pool.size)
            chosen = rng.choice(pool, size=from_pool, replace=False)
            mask[chosen] = True
            rest = quota - from_pool
            if rest > 0:
                others = np.flatnonzero(~truth & ~t_votes[profile.name] & ~mask)
                rest = min(rest, others.size)
                mask[rng.choice(others, size=rest, replace=False)] = True
        f_votes[profile.name] = mask

    # Every fact must have come from somewhere (a fact *is* a source
    # listing, open or CLOSED): facts with neither T nor F votes get one
    # T vote from a coverage-weighted source.
    any_vote = np.logical_or.reduce(
        [t_votes[p.name] | f_votes[p.name] for p in profiles]
    )
    orphans = np.flatnonzero(~any_vote)
    if orphans.size:
        weights = np.array([p.coverage for p in profiles])
        weights = weights / weights.sum()
        assignment = rng.choice(len(profiles), size=orphans.size, p=weights)
        for idx, source_idx in zip(orphans, assignment):
            t_votes[profiles[source_idx].name][idx] = True

    for profile in profiles:
        for idx in np.flatnonzero(t_votes[profile.name]):
            matrix.add_vote(fact_ids[idx], profile.name, Vote.TRUE)
        for idx in np.flatnonzero(f_votes[profile.name]):
            matrix.add_vote(fact_ids[idx], profile.name, Vote.FALSE)

    golden = _sample_golden_set(
        rng=rng,
        truth=truth,
        popularity=popularity,
        popularity_quantile=popularity_quantile,
        golden_true=golden_true,
        golden_false=golden_false,
        golden_false_with_f_votes=round(golden_false_with_f_votes * min(scale, 1.0)),
        f_votes=f_votes,
    )

    dataset = Dataset(
        matrix=matrix,
        truth={fact: bool(t) for fact, t in zip(fact_ids, truth)},
        golden_set=frozenset(fact_ids[i] for i in golden),
        name=f"restaurants[{num_facts} listings]",
    )
    return RestaurantWorld(
        dataset=dataset,
        profiles=profiles,
        popularity={fact: float(u) for fact, u in zip(fact_ids, popularity)},
    )


def _sample_golden_set(
    rng: np.random.Generator,
    truth: np.ndarray,
    popularity: np.ndarray,
    popularity_quantile: float,
    golden_true: int,
    golden_false: int,
    golden_false_with_f_votes: int,
    f_votes: dict[str, np.ndarray],
) -> np.ndarray:
    """Indices of the golden-set facts (see module docstring)."""
    threshold = np.quantile(popularity, popularity_quantile)
    dense = popularity >= threshold

    open_pool = np.flatnonzero(dense & truth)
    if open_pool.size < golden_true:
        open_pool = np.flatnonzero(truth)
    chosen_true = rng.choice(
        open_pool, size=min(golden_true, open_pool.size), replace=False
    )

    any_f = np.logical_or.reduce(list(f_votes.values()))
    flagged_pool = np.flatnonzero(~truth & any_f)
    n_flagged = min(golden_false_with_f_votes, flagged_pool.size, golden_false)
    chosen_flagged = (
        rng.choice(flagged_pool, size=n_flagged, replace=False)
        if n_flagged
        else np.empty(0, dtype=int)
    )

    remaining = golden_false - n_flagged
    closed_pool = np.flatnonzero(dense & ~truth & ~any_f)
    if closed_pool.size < remaining:
        closed_pool = np.setdiff1d(np.flatnonzero(~truth), chosen_flagged)
    chosen_closed = (
        rng.choice(closed_pool, size=min(remaining, closed_pool.size), replace=False)
        if remaining
        else np.empty(0, dtype=int)
    )
    return np.concatenate([chosen_true, chosen_flagged, chosen_closed])
