"""Experiment E1/E2 — the motivating example (paper Tables 1 and 2).

Runs TwoEstimate, BayesEstimate and IncEstimate over the 12-restaurant /
5-source instance of Table 1 and reports the precision / recall / accuracy
rows of Table 2, plus the round-by-round trust vectors of Figure 1.
"""

from __future__ import annotations

from repro.baselines import BayesEstimate, TwoEstimate
from repro.core import IncEstHeu, IncEstimate
from repro.datasets.motivating import motivating_example
from repro.eval.harness import run_methods
from repro.eval.metrics import evaluate_result
from repro.model.dataset import Dataset
from repro.obs import NULL_OBS, Obs
from repro.resilience.supervisor import SUPERVISED, Supervision


def table2(
    dataset: Dataset | None = None,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
    workers: int | None = None,
) -> list[dict]:
    """Rows of Table 2: P/R/A of the three Section 2 strategies.

    Paper values: TwoEstimate 0.64 / 1 / 0.67; BayesEstimate 0.58 / 1 /
    0.58; "our strategy" (the simplified 3-round walkthrough) 0.78 / 1 /
    0.83.  Our IncEstHeu is the full algorithm, not the hand walkthrough,
    so its row can differ (EXPERIMENTS.md records both).
    """
    dataset = dataset or motivating_example()
    methods = [
        TwoEstimate(),
        BayesEstimate(burn_in=50, samples=150),
        IncEstimate(IncEstHeu()),
    ]
    runs = run_methods(
        methods, dataset, obs=obs, supervision=supervision, workers=workers
    )
    rows = []
    for run in runs:
        if run.failed:
            rows.append(
                {"method": run.method, "precision": f"failed: {run.error_type}"}
            )
            continue
        counts = evaluate_result(run.result, dataset)
        rows.append(
            {
                "method": run.method,
                "precision": counts.precision,
                "recall": counts.recall,
                "accuracy": counts.accuracy,
            }
        )
    return rows


def figure1_rounds() -> list[dict]:
    """The Figure 1 walkthrough data: per-time-point trust vectors."""
    dataset = motivating_example()
    result = IncEstimate(IncEstHeu()).run(dataset)
    assert result.trajectory is not None
    rows = []
    for time_point, vector in enumerate(result.trajectory.as_rows()):
        row: dict = {"time_point": time_point}
        row.update(vector)
        rows.append(row)
    return rows


__all__ = ["figure1_rounds", "table2"]
