"""Experiment E8 — the Hubdub-like multi-answer dataset (paper Table 7).

The paper re-runs the methods on Galland et al.'s Hubdub snapshot — a
conflict-rich multi-answer task — to show IncEstimate "is not only suitable
for the corroboration problem discussed in this paper".  Table 7 reports
the *number of errors* (false positives + false negatives over
answer-facts); the paper's values: Voting 292, Counting 327, TwoEstimate
269, ThreeEstimate 270, IncEstHeu 262.
"""

from __future__ import annotations

from repro.datasets.hubdub import HubdubWorld, generate_hubdub_like
from repro.eval.harness import run_methods
from repro.experiments.methods import hubdub_methods
from repro.model.claims import count_answer_errors, predict_answers
from repro.obs import NULL_OBS, Obs
from repro.resilience.supervisor import SUPERVISED, Supervision


def table7(
    world: HubdubWorld | None = None,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
    workers: int | None = None,
) -> list[dict]:
    """Table 7 rows: method → number of errors.

    Predictions are made per question (argmax over the candidate answers'
    probabilities), then scored with the Galland error metric.  Failed
    (supervisor-isolated) methods appear with their failure instead of an
    error count.
    """
    world = world or generate_hubdub_like()
    question_set = world.questions
    dataset = question_set.to_dataset(name="hubdub-like")
    runs = run_methods(
        hubdub_methods(), dataset, obs=obs, supervision=supervision, workers=workers
    )
    rows = []
    for run in runs:
        if run.failed:
            rows.append(
                {"method": run.method, "errors": f"failed: {run.error_type}"}
            )
            continue
        predictions = predict_answers(question_set, run.result.probabilities)
        rows.append(
            {
                "method": run.method,
                "errors": count_answer_errors(question_set, predictions),
            }
        )
    return rows
