"""Standard method line-ups used across the experiments.

Table 4 order: Voting, Counting, BayesEstimate, TwoEstimate, ML-SVM,
ML-Logistic, IncEstPS, IncEstHeu.  The Bayesian sampler's sweep counts are
exposed because the full-scale restaurant dataset makes collapsed Gibbs the
slowest method by far (as in the paper's Table 6, where BayesEstimate is
the outlier at 7.38 s) and the test suite needs a faster setting.
"""

from __future__ import annotations

from repro.baselines import (
    AvgLog,
    BayesEstimate,
    BayesEstimateFast,
    Cosine,
    Counting,
    Invest,
    PooledInvest,
    ThreeEstimate,
    TruthFinder,
    TwoEstimate,
    Voting,
)
from repro.core import IncEstHeu, IncEstPS, IncEstimate
from repro.core.result import Corroborator
from repro.ml import ml_logistic, ml_svm


def inc_est_heu() -> IncEstimate:
    """The paper's algorithm with the default IncEstHeu strategy."""
    return IncEstimate(IncEstHeu())


def inc_est_ps() -> IncEstimate:
    """The incremental algorithm with the naive greedy strategy."""
    return IncEstimate(IncEstPS())


def paper_methods(
    bayes_burn_in: int = 10, bayes_samples: int = 20, with_ml: bool = True
) -> list[Corroborator]:
    """The eight methods of Table 4, in table order."""
    methods: list[Corroborator] = [
        Voting(),
        Counting(),
        BayesEstimate(burn_in=bayes_burn_in, samples=bayes_samples),
        TwoEstimate(),
    ]
    if with_ml:
        methods.extend([ml_svm(), ml_logistic()])
    methods.extend([inc_est_ps(), inc_est_heu()])
    return methods


def hubdub_methods() -> list[Corroborator]:
    """The Table 7 line-up (no ML — the task is multi-answer).

    The incremental algorithm gets a stronger trust prior here: Hubdub has
    471 sparse sources (~18 votes each), so the default facts-proportional
    prior (≈ 0.4 pseudo-votes) would let a single early evaluation pin a
    user's trust at 0 or 1.
    """
    return [
        Voting(),
        Counting(),
        TwoEstimate(),
        ThreeEstimate(),
        IncEstimate(IncEstHeu(), trust_prior_strength=0.05),
    ]


def synthetic_methods(
    bayes_burn_in: int = 10, bayes_samples: int = 20
) -> list[Corroborator]:
    """The Figure 3 line-up.

    Uses the vectorised LTM sampler: Figure 3 needs 26 configurations x 3
    seeds, and :class:`BayesEstimateFast` is equivalence-tested against the
    sequential sampler (tests/test_bayesestimate_fast.py) at two orders of
    magnitude less wall-clock.  Table 6, whose point *is* the per-method
    cost, keeps the faithful sequential sampler.
    """
    return [
        inc_est_heu(),
        TwoEstimate(),
        BayesEstimateFast(burn_in=bayes_burn_in, samples=bayes_samples),
        Counting(),
        Voting(),
    ]


def extended_methods() -> list[Corroborator]:
    """Related-work comparators used by the ablation bench."""
    return [
        Cosine(),
        TruthFinder(),
        AvgLog(),
        Invest(),
        PooledInvest(),
        ThreeEstimate(),
    ]
