"""Experiments: one module per paper table / figure (see DESIGN.md §5)."""

from repro.experiments.hubdub_exp import table7
from repro.experiments.methods import (
    extended_methods,
    hubdub_methods,
    inc_est_heu,
    inc_est_ps,
    paper_methods,
    synthetic_methods,
)
from repro.experiments.motivating_example import figure1_rounds, table2
from repro.experiments.real_world import (
    build_world,
    figure2,
    run_paper_methods,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.significance_exp import significance_table
from repro.experiments.synthetic_exp import figure3a, figure3b, figure3c

__all__ = [
    "build_world",
    "extended_methods",
    "figure1_rounds",
    "figure2",
    "figure3a",
    "figure3b",
    "figure3c",
    "hubdub_methods",
    "inc_est_heu",
    "inc_est_ps",
    "paper_methods",
    "run_paper_methods",
    "significance_table",
    "synthetic_methods",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]
