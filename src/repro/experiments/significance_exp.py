"""Experiment E12 — the paper's significance claim (Section 6.2.2).

"The improvement is statistical significant for both baseline and existing
corroboration techniques (with p-value < 0.001)" — and, for the ML
baselines, "the improvement of our IncEstHeu over the machine learning
based approaches is not statistically significant".  This module runs the
paired tests behind both statements on the golden set.
"""

from __future__ import annotations

from repro.datasets.restaurants import RestaurantWorld, generate_restaurants
from repro.eval.harness import run_methods
from repro.eval.significance import (
    correctness_vector,
    mcnemar_test,
    paired_permutation_test,
)
from repro.experiments.methods import inc_est_heu, paper_methods


def significance_table(
    world: RestaurantWorld | None = None,
    bayes_burn_in: int = 10,
    bayes_samples: int = 20,
    permutation_iterations: int = 10_000,
) -> list[dict]:
    """Paired p-values of IncEstHeu against every other Table 4 method.

    Returns one row per comparison with both the McNemar and the
    permutation p-value, plus the accuracy difference on the golden set.
    """
    world = world or generate_restaurants()
    dataset = world.dataset
    methods = paper_methods(
        bayes_burn_in=bayes_burn_in, bayes_samples=bayes_samples
    )
    runs = run_methods(methods, dataset)
    by_name = {run.method: run for run in runs}
    heu_name = inc_est_heu().name
    heu_vector = correctness_vector(by_name[heu_name].result.labels(), dataset)
    heu_accuracy = sum(heu_vector) / len(heu_vector)

    rows: list[dict] = []
    for run in runs:
        if run.method == heu_name:
            continue
        other_vector = correctness_vector(run.result.labels(), dataset)
        other_accuracy = sum(other_vector) / len(other_vector)
        rows.append(
            {
                "vs": run.method,
                "accuracy_delta": heu_accuracy - other_accuracy,
                "mcnemar_p": mcnemar_test(heu_vector, other_vector),
                "permutation_p": paired_permutation_test(
                    heu_vector,
                    other_vector,
                    iterations=permutation_iterations,
                ),
            }
        )
    return rows
