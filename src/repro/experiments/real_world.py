"""Experiments E3–E7 — the real-world restaurant dataset.

Regenerates, against the simulated crawl of
:mod:`repro.datasets.restaurants`:

* **Table 3** — source coverage, pairwise overlap, golden-set accuracy;
* **Table 4** — precision / recall / accuracy / F1 of the eight methods;
* **Table 5** — per-source trust scores and the trust MSE;
* **Figure 2** — per-time-point trust trajectories of IncEstPS / IncEstHeu;
* **Table 6** — wall-clock time per method.

Every function takes an optional pre-built world so the expensive
generation is shared; benchmarks pass a module-level cached one.
"""

from __future__ import annotations

from repro.core import IncEstHeu, IncEstPS, IncEstimate
from repro.datasets.restaurants import RestaurantWorld, generate_restaurants
from repro.eval.harness import (
    MethodRun,
    mse_table,
    quality_table,
    run_methods,
    timing_table,
)
from repro.experiments.methods import paper_methods
from repro.obs import NULL_OBS, Obs, get_logger
from repro.resilience.supervisor import SUPERVISED, Supervision

_LOG = get_logger(__name__)


def build_world(num_facts: int | None = None, **kwargs) -> RestaurantWorld:
    """Generate the restaurant world (paper scale by default)."""
    if num_facts is not None:
        kwargs["num_facts"] = num_facts
    _LOG.info("generating restaurant world (%s)", kwargs or "paper defaults")
    world = generate_restaurants(**kwargs)
    _LOG.info(
        "restaurant world ready: %d facts, %d sources",
        world.dataset.matrix.num_facts,
        world.dataset.matrix.num_sources,
    )
    return world


def table3(world: RestaurantWorld | None = None) -> dict[str, list[dict]]:
    """Table 3 blocks: coverage row, overlap matrix, accuracy row."""
    world = world or build_world()
    coverage = {"metric": "coverage", **world.coverage_row()}
    accuracy_values = world.accuracy_row()
    accuracy = {
        "metric": "accuracy",
        **{k: (v if v is not None else "-") for k, v in accuracy_values.items()},
    }
    return {
        "coverage": [coverage],
        "overlap": world.overlap_matrix(),
        "accuracy": [accuracy],
        "f_votes": [{"metric": "f_votes", **world.f_vote_counts()}],
    }


def run_paper_methods(
    world: RestaurantWorld | None = None,
    bayes_burn_in: int = 10,
    bayes_samples: int = 20,
    with_ml: bool = True,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
) -> tuple[RestaurantWorld, list[MethodRun]]:
    """Run the Table 4 method line-up once; shared by Tables 4–6.

    ``obs`` is forwarded to :func:`~repro.eval.harness.run_methods`, so a
    traced experiment shows one ``harness.method`` block per method;
    ``supervision`` configures the sweep's error isolation (a failed
    method becomes a structured failure row in Tables 4–6 instead of
    killing the whole line-up).
    """
    world = world or build_world()
    methods = paper_methods(
        bayes_burn_in=bayes_burn_in, bayes_samples=bayes_samples, with_ml=with_ml
    )
    _LOG.info("running %d paper methods on the restaurant dataset", len(methods))
    return world, run_methods(methods, world.dataset, obs=obs, supervision=supervision)


def table4(runs: list[MethodRun], world: RestaurantWorld) -> list[dict]:
    """Table 4 rows from a completed run set."""
    return quality_table(runs, world.dataset)


def table5(runs: list[MethodRun], world: RestaurantWorld) -> list[dict]:
    """Table 5 rows (trust per source + MSE) from a completed run set."""
    return mse_table(runs, world.dataset)


def table6(runs: list[MethodRun]) -> list[dict]:
    """Table 6 rows (wall-clock seconds) from a completed run set."""
    return timing_table(runs)


def figure2(
    world: RestaurantWorld | None = None,
) -> dict[str, list[dict]]:
    """Figure 2 data: trust per source per time point, for both strategies.

    Returns {"IncEstPS": rows, "IncEstHeu": rows}; each row is
    {"time_point": i, source: trust, ...}.
    """
    world = world or build_world()
    series: dict[str, list[dict]] = {}
    for strategy in (IncEstPS(), IncEstHeu()):
        result = IncEstimate(strategy).run(world.dataset)
        assert result.trajectory is not None
        rows = []
        for time_point, vector in enumerate(result.trajectory.as_rows()):
            row: dict = {"time_point": time_point}
            row.update(vector)
            rows.append(row)
        series[strategy.name] = rows
    return series
