"""Experiments E9–E11 — the synthetic sweeps of Figure 3.

Three accuracy sweeps over the Section 6.3.1 generator:

* Figure 3(a): total sources 2–11, inaccurate fixed at 2;
* Figure 3(b): inaccurate sources 0–10, total fixed at 10;
* Figure 3(c): F-vote fraction η ∈ {0.01 … 0.05}, 10 sources / 2
  inaccurate.

The paper uses 20,000 facts per configuration; ``num_facts`` (and
``repeats`` for variance reduction) are exposed so tests can run small.
Each point is the accuracy over all facts.

The sweeps are embarrassingly parallel: each ``(point, seed)`` pair is an
independent cell.  Pass ``workers=N`` to run them on a ``spawn`` process
pool (:mod:`repro.parallel`); any explicit worker count — including 1 —
produces bit-identical rows and a bit-identical merged run ledger, because
the cell seeds come from the cell's *identity* (``root_seed`` + figure +
point + repeat, via :func:`repro.parallel.spawn_seeds`), never from the
schedule.  ``workers=None`` keeps the historical serial loop.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import generate_synthetic
from repro.eval.harness import run_methods
from repro.eval.metrics import evaluate_result
from repro.experiments.methods import synthetic_methods
from repro.obs import NULL_OBS, Obs, get_logger
from repro.parallel import ShardRunner, spawn_seeds
from repro.resilience.supervisor import SUPERVISED, Supervision

_LOG = get_logger(__name__)


def _point_seeds(
    root_seed: int | None, figure: str, point: object, repeats: int
) -> list[int]:
    """Per-repeat dataset seeds for one sweep point.

    With no ``root_seed`` the historical ``0..repeats-1`` seeds are kept
    (so published numbers do not move); with one, seeds derive from the
    cell identity and are therefore schedule- and worker-count-independent.
    """
    if root_seed is None:
        return list(range(repeats))
    component = point if isinstance(point, int) else str(point)
    return spawn_seeds(root_seed, repeats, figure, component)


def _sweep_cell(payload: dict, obs: Obs = NULL_OBS) -> dict:
    """One ``(point, seed)`` cell: generate the world, run every method.

    Module-level (picklable by reference) so it can run inside a ``spawn``
    worker; the serial path calls the same function inline.  Returns
    per-method accuracies plus the isolated failures, never raises under
    a supervised sweep.
    """
    world = generate_synthetic(
        num_accurate=payload["num_accurate"],
        num_inaccurate=payload["num_inaccurate"],
        num_facts=payload["num_facts"],
        eta=payload["eta"],
        seed=payload["seed"],
    )
    runs = run_methods(
        synthetic_methods(
            bayes_burn_in=payload["bayes_burn_in"],
            bayes_samples=payload["bayes_samples"],
        ),
        world.dataset,
        obs=obs,
        supervision=payload["supervision"],
    )
    accuracies: dict[str, float] = {}
    failures: dict[str, str] = {}
    for run in runs:
        if run.failed:
            failures[run.method] = run.error_type or "error"
        else:
            counts = evaluate_result(run.result, world.dataset)
            accuracies[run.method] = counts.accuracy
    return {"accuracies": accuracies, "failures": failures}


def _cell_payload(
    num_accurate: int,
    num_inaccurate: int,
    eta: float,
    num_facts: int,
    seed: int,
    bayes_burn_in: int,
    bayes_samples: int,
    supervision: Supervision,
) -> dict:
    return {
        "num_accurate": num_accurate,
        "num_inaccurate": num_inaccurate,
        "eta": eta,
        "num_facts": num_facts,
        "seed": seed,
        "bayes_burn_in": bayes_burn_in,
        "bayes_samples": bayes_samples,
        "supervision": supervision,
    }


def _mean_accuracies(cell_results: list[dict]) -> dict[str, float]:
    """Mean accuracy per method over one point's cells, in cell order."""
    totals: dict[str, list[float]] = {}
    for result in cell_results:
        for method, error_type in result["failures"].items():
            _LOG.warning(
                "%s failed at this sweep point (%s); excluded from the mean",
                method,
                error_type,
            )
        for method, accuracy in result["accuracies"].items():
            totals.setdefault(method, []).append(accuracy)
    return {method: float(np.mean(values)) for method, values in totals.items()}


def _accuracy_point(
    num_accurate: int,
    num_inaccurate: int,
    eta: float,
    num_facts: int,
    seeds: list[int],
    bayes_burn_in: int,
    bayes_samples: int,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
) -> dict[str, float]:
    """Mean accuracy per method over the given seeds (serial path)."""
    _LOG.info(
        "sweep point: %d accurate + %d inaccurate sources, eta=%.3f, "
        "%d facts x %d seeds",
        num_accurate,
        num_inaccurate,
        eta,
        num_facts,
        len(seeds),
    )
    results = [
        _sweep_cell(
            _cell_payload(
                num_accurate,
                num_inaccurate,
                eta,
                num_facts,
                seed,
                bayes_burn_in,
                bayes_samples,
                supervision,
            ),
            obs,
        )
        for seed in seeds
    ]
    return _mean_accuracies(results)


#: One sweep point: (row key, row value, num_accurate, num_inaccurate, eta).
_Point = tuple[str, object, int, int, float]


def _sweep_rows(
    figure: str,
    points: list[_Point],
    num_facts: int,
    repeats: int,
    bayes_burn_in: int,
    bayes_samples: int,
    obs: Obs,
    supervision: Supervision,
    workers: int | None,
    root_seed: int | None,
) -> list[dict]:
    """Run one Figure 3 sweep, serially or sharded over ``workers``."""
    if workers is None:
        rows = []
        for key, value, num_accurate, num_inaccurate, eta in points:
            point = _accuracy_point(
                num_accurate=num_accurate,
                num_inaccurate=num_inaccurate,
                eta=eta,
                num_facts=num_facts,
                seeds=_point_seeds(root_seed, figure, value, repeats),
                bayes_burn_in=bayes_burn_in,
                bayes_samples=bayes_samples,
                obs=obs,
                supervision=supervision,
            )
            rows.append({key: value, **point})
        return rows

    payloads: list[dict] = []
    labels: list[str] = []
    for key, value, num_accurate, num_inaccurate, eta in points:
        seeds = _point_seeds(root_seed, figure, value, repeats)
        for repeat, seed in enumerate(seeds):
            payloads.append(
                _cell_payload(
                    num_accurate,
                    num_inaccurate,
                    eta,
                    num_facts,
                    seed,
                    bayes_burn_in,
                    bayes_samples,
                    supervision,
                )
            )
            labels.append(f"{figure}[{key}={value}]#{repeat}")
    runner = ShardRunner(
        workers=workers,
        isolate_errors=supervision.isolate_errors,
        obs=obs,
        label=figure,
    )
    outcomes = runner.run(_sweep_cell, payloads, labels=labels)
    rows = []
    cursor = 0
    for key, value, _, _, _ in points:
        cells = outcomes[cursor : cursor + repeats]
        cursor += repeats
        results = []
        for outcome in cells:
            if outcome.failed:
                _LOG.warning(
                    "%s failed (%s); excluded from the mean",
                    outcome.label,
                    outcome.error_type,
                )
                continue
            results.append(outcome.value)
        rows.append({key: value, **_mean_accuracies(results)})
    return rows


def figure3a(
    num_facts: int = 20_000,
    source_counts: list[int] | None = None,
    repeats: int = 1,
    bayes_burn_in: int = 10,
    bayes_samples: int = 20,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
    workers: int | None = None,
    root_seed: int | None = None,
) -> list[dict]:
    """Accuracy vs total number of sources (2 inaccurate fixed)."""
    counts = source_counts or list(range(2, 12))
    points: list[_Point] = [
        ("num_sources", total, total - 2, 2, 0.03) for total in counts
    ]
    return _sweep_rows(
        "figure3a",
        points,
        num_facts,
        repeats,
        bayes_burn_in,
        bayes_samples,
        obs,
        supervision,
        workers,
        root_seed,
    )


def figure3b(
    num_facts: int = 20_000,
    inaccurate_counts: list[int] | None = None,
    repeats: int = 1,
    bayes_burn_in: int = 10,
    bayes_samples: int = 20,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
    workers: int | None = None,
    root_seed: int | None = None,
) -> list[dict]:
    """Accuracy vs number of inaccurate sources (10 total fixed)."""
    counts = inaccurate_counts if inaccurate_counts is not None else list(range(0, 11))
    points: list[_Point] = [
        ("num_inaccurate", inaccurate, 10 - inaccurate, inaccurate, 0.03)
        for inaccurate in counts
    ]
    return _sweep_rows(
        "figure3b",
        points,
        num_facts,
        repeats,
        bayes_burn_in,
        bayes_samples,
        obs,
        supervision,
        workers,
        root_seed,
    )


def figure3c(
    num_facts: int = 20_000,
    etas: list[float] | None = None,
    repeats: int = 1,
    bayes_burn_in: int = 10,
    bayes_samples: int = 20,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
    workers: int | None = None,
    root_seed: int | None = None,
) -> list[dict]:
    """Accuracy vs F-vote fraction η (10 sources, 2 inaccurate)."""
    eta_values = etas or [0.01, 0.02, 0.03, 0.04, 0.05]
    points: list[_Point] = [("eta", eta, 8, 2, eta) for eta in eta_values]
    return _sweep_rows(
        "figure3c",
        points,
        num_facts,
        repeats,
        bayes_burn_in,
        bayes_samples,
        obs,
        supervision,
        workers,
        root_seed,
    )
