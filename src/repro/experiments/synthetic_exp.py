"""Experiments E9–E11 — the synthetic sweeps of Figure 3.

Three accuracy sweeps over the Section 6.3.1 generator:

* Figure 3(a): total sources 2–11, inaccurate fixed at 2;
* Figure 3(b): inaccurate sources 0–10, total fixed at 10;
* Figure 3(c): F-vote fraction η ∈ {0.01 … 0.05}, 10 sources / 2
  inaccurate.

The paper uses 20,000 facts per configuration; ``num_facts`` (and
``repeats`` for variance reduction) are exposed so tests can run small.
Each point is the accuracy over all facts.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import generate_synthetic
from repro.eval.harness import run_methods
from repro.eval.metrics import evaluate_result
from repro.experiments.methods import synthetic_methods
from repro.obs import NULL_OBS, Obs, get_logger
from repro.resilience.supervisor import SUPERVISED, Supervision

_LOG = get_logger(__name__)


def _accuracy_point(
    num_accurate: int,
    num_inaccurate: int,
    eta: float,
    num_facts: int,
    seeds: list[int],
    bayes_burn_in: int,
    bayes_samples: int,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
) -> dict[str, float]:
    """Mean accuracy per method over the given seeds."""
    _LOG.info(
        "sweep point: %d accurate + %d inaccurate sources, eta=%.3f, "
        "%d facts x %d seeds",
        num_accurate,
        num_inaccurate,
        eta,
        num_facts,
        len(seeds),
    )
    totals: dict[str, list[float]] = {}
    for seed in seeds:
        world = generate_synthetic(
            num_accurate=num_accurate,
            num_inaccurate=num_inaccurate,
            num_facts=num_facts,
            eta=eta,
            seed=seed,
        )
        runs = run_methods(
            synthetic_methods(bayes_burn_in=bayes_burn_in, bayes_samples=bayes_samples),
            world.dataset,
            obs=obs,
            supervision=supervision,
        )
        for run in runs:
            if run.failed:
                _LOG.warning(
                    "%s failed at this sweep point (%s); excluded from the "
                    "mean",
                    run.method,
                    run.error_type,
                )
                continue
            counts = evaluate_result(run.result, world.dataset)
            totals.setdefault(run.method, []).append(counts.accuracy)
    return {method: float(np.mean(values)) for method, values in totals.items()}


def figure3a(
    num_facts: int = 20_000,
    source_counts: list[int] | None = None,
    repeats: int = 1,
    bayes_burn_in: int = 10,
    bayes_samples: int = 20,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
) -> list[dict]:
    """Accuracy vs total number of sources (2 inaccurate fixed)."""
    counts = source_counts or list(range(2, 12))
    rows = []
    for total in counts:
        point = _accuracy_point(
            num_accurate=total - 2,
            num_inaccurate=2,
            eta=0.03,
            num_facts=num_facts,
            seeds=list(range(repeats)),
            bayes_burn_in=bayes_burn_in,
            bayes_samples=bayes_samples,
            obs=obs,
            supervision=supervision,
        )
        rows.append({"num_sources": total, **point})
    return rows


def figure3b(
    num_facts: int = 20_000,
    inaccurate_counts: list[int] | None = None,
    repeats: int = 1,
    bayes_burn_in: int = 10,
    bayes_samples: int = 20,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
) -> list[dict]:
    """Accuracy vs number of inaccurate sources (10 total fixed)."""
    counts = inaccurate_counts if inaccurate_counts is not None else list(range(0, 11))
    rows = []
    for inaccurate in counts:
        point = _accuracy_point(
            num_accurate=10 - inaccurate,
            num_inaccurate=inaccurate,
            eta=0.03,
            num_facts=num_facts,
            seeds=list(range(repeats)),
            bayes_burn_in=bayes_burn_in,
            bayes_samples=bayes_samples,
            obs=obs,
            supervision=supervision,
        )
        rows.append({"num_inaccurate": inaccurate, **point})
    return rows


def figure3c(
    num_facts: int = 20_000,
    etas: list[float] | None = None,
    repeats: int = 1,
    bayes_burn_in: int = 10,
    bayes_samples: int = 20,
    obs: Obs = NULL_OBS,
    supervision: Supervision = SUPERVISED,
) -> list[dict]:
    """Accuracy vs F-vote fraction η (10 sources, 2 inaccurate)."""
    eta_values = etas or [0.01, 0.02, 0.03, 0.04, 0.05]
    rows = []
    for eta in eta_values:
        point = _accuracy_point(
            num_accurate=8,
            num_inaccurate=2,
            eta=eta,
            num_facts=num_facts,
            seeds=list(range(repeats)),
            bayes_burn_in=bayes_burn_in,
            bayes_samples=bayes_samples,
            obs=obs,
            supervision=supervision,
        )
        rows.append({"eta": eta, **point})
    return rows
