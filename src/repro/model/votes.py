"""Vote primitives.

The paper models a statement from a source about a fact as one of three
symbols (Equation 1):

* ``T`` — the source *agrees* with the fact (an affirmative statement, e.g.
  the source lists the restaurant),
* ``F`` — the source *disagrees* (e.g. the source lists the restaurant as
  ``CLOSED``),
* ``-`` — the source has no knowledge about the fact.

Absence of knowledge is represented in this library by *absence of a vote*
rather than a third enum member: sparse vote matrices over tens of thousands
of facts would otherwise be dominated by explicit "don't know" entries.  The
:class:`Vote` enum therefore only has the two informative members, and every
API that can encounter a missing vote uses ``Optional[Vote]`` with ``None``
meaning ``-``.
"""

from __future__ import annotations

import enum


class Vote(enum.Enum):
    """An informative statement of a source about a fact."""

    TRUE = "T"
    FALSE = "F"

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"Vote.{self.name}"

    @property
    def is_affirmative(self) -> bool:
        """Whether this vote supports the fact being true."""
        return self is Vote.TRUE

    def flipped(self) -> "Vote":
        """The opposite vote (``T`` ↔ ``F``)."""
        return Vote.FALSE if self is Vote.TRUE else Vote.TRUE

    @classmethod
    def from_symbol(cls, symbol: str) -> "Vote | None":
        """Parse a paper-style vote symbol.

        Accepts ``"T"``, ``"F"`` and the no-knowledge symbol ``"-"`` (which
        maps to ``None``).  Whitespace is ignored; matching is
        case-insensitive.

        >>> Vote.from_symbol("T")
        Vote.TRUE
        >>> Vote.from_symbol(" f ")
        Vote.FALSE
        >>> Vote.from_symbol("-") is None
        True
        """
        cleaned = symbol.strip().upper()
        if cleaned == "T":
            return cls.TRUE
        if cleaned == "F":
            return cls.FALSE
        if cleaned in {"-", ""}:
            return None
        raise ValueError(f"unrecognised vote symbol: {symbol!r}")


# Convenience aliases used pervasively in tests and dataset builders.
T = Vote.TRUE
F = Vote.FALSE
