"""Sparse vote matrix.

:class:`VoteMatrix` is the central data structure shared by every
corroboration algorithm in this library.  It stores the (fact, source) →
:class:`~repro.model.votes.Vote` relation sparsely and maintains both
orientations of the index so that algorithms can iterate efficiently either
per fact (``Corrob`` steps) or per source (``Update_Trust`` steps).

The matrix is deliberately *append-only*: corroboration algorithms treat the
observed votes as immutable evidence, and the incremental algorithm's notion
of "evaluated so far" is tracked outside the matrix (see
:mod:`repro.core.trust`).

Append-only mutation makes cheap derived state safe, and the matrix
maintains three kinds of it:

* the :attr:`~VoteMatrix.facts` / :attr:`~VoteMatrix.sources` lists are
  cached and invalidated when a new fact or source is registered, so
  callers that touch these properties inside loops no longer pay O(n)
  list construction per access;
* every fact carries an incrementally-maintained *packed signature code*
  (2 bits per source), so the fact-grouping step of the array engine
  (:mod:`repro.core.arrays`) is a single integer-key partition instead of
  per-fact signature construction and sorting.  Code maintenance is
  dropped once the source axis grows past
  :data:`SIGNATURE_CODE_SOURCE_LIMIT` — at web scale the per-fact big-ints
  would dominate memory, and grouping falls back to signature-tuple
  bucketing (:attr:`~VoteMatrix.has_signature_codes`);
* a :attr:`version` counter ticks on every mutation, letting derived
  structures (e.g. the dense group arrays) cache themselves against a
  matrix snapshot via :meth:`derived_cache`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.model.votes import Vote

FactId = str
SourceId = str

#: A fact's *vote signature*: the canonically-ordered tuple of
#: (source, vote symbol) pairs.  Facts with equal signatures are
#: indistinguishable to every algorithm in this library and form the paper's
#: "fact groups" (Section 5.1).
Signature = tuple[tuple[SourceId, str], ...]

#: Shared empty mapping backing the non-copying iterators for unknown keys.
_EMPTY_VOTES: dict = {}

#: Beyond this many sources the matrix stops maintaining packed signature
#: codes: each code holds 2 bits per source column, so at 10k+ sources a
#: million facts would pin gigabytes of Python big-ints for an index the
#: grouping step can live without (it buckets signature tuples instead).
SIGNATURE_CODE_SOURCE_LIMIT = 1024


class VoteMatrix:
    """Sparse map of the votes cast by sources over facts.

    The matrix registers facts and sources explicitly so that isolated items
    (a fact no source voted on, or a source that cast no votes) are still
    part of the problem instance — the paper's metrics are computed over all
    facts, voted on or not.
    """

    #: Packed signature-code values: 2 bits per source, low bit = T vote,
    #: high bit = F vote.  Python ints are arbitrary precision, so the
    #: encoding works for any number of sources.
    _CODE_TRUE = 1
    _CODE_FALSE = 2

    def __init__(self) -> None:
        self._by_fact: dict[FactId, dict[SourceId, Vote]] = {}
        self._by_source: dict[SourceId, dict[FactId, Vote]] = {}
        #: Column index of each source, in registration order.
        self._source_pos: dict[SourceId, int] = {}
        #: Packed signature code per fact (see :meth:`signature_codes`);
        #: ``None`` once maintenance is dropped for a wide source axis.
        self._sig_codes: dict[FactId, int] | None = {}
        self._facts_cache: list[FactId] | None = None
        self._sources_cache: list[SourceId] | None = None
        self._version = 0
        self._derived_cache: dict = {}

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without derived caches (group arrays, fact/source lists).

        The caches are pure functions of the vote data and can hold large
        NumPy blocks; dropping them keeps the payload a sharded sweep ships
        to each worker proportional to the votes, and workers rebuild on
        first use.
        """
        state = self.__dict__.copy()
        state["_derived_cache"] = {}
        state["_facts_cache"] = None
        state["_sources_cache"] = None
        return state

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._version += 1
        if self._derived_cache:
            self._derived_cache.clear()

    def add_fact(self, fact: FactId) -> None:
        """Register ``fact`` (idempotent)."""
        if fact not in self._by_fact:
            self._by_fact[fact] = {}
            if self._sig_codes is not None:
                self._sig_codes[fact] = 0
            self._facts_cache = None
            self._invalidate()

    def add_source(self, source: SourceId) -> None:
        """Register ``source`` (idempotent)."""
        if source not in self._by_source:
            self._source_pos[source] = len(self._by_source)
            self._by_source[source] = {}
            if (
                self._sig_codes is not None
                and len(self._by_source) > SIGNATURE_CODE_SOURCE_LIMIT
            ):
                self._sig_codes = None
            self._sources_cache = None
            self._invalidate()

    def add_vote(self, fact: FactId, source: SourceId, vote: Vote) -> None:
        """Record that ``source`` cast ``vote`` on ``fact``.

        Re-casting a different vote for the same (fact, source) pair is an
        error: a crawl snapshot contains at most one statement per pair, and
        silently overwriting would hide dataset-construction bugs.
        """
        if not isinstance(vote, Vote):
            raise TypeError(f"vote must be a Vote, got {type(vote).__name__}")
        existing = self._by_fact.get(fact, {}).get(source)
        if existing is not None:
            if existing is not vote:
                raise ValueError(
                    f"conflicting vote for fact={fact!r} source={source!r}: "
                    f"{existing} already recorded, attempted {vote}"
                )
            return
        self.add_fact(fact)
        self.add_source(source)
        self._by_fact[fact][source] = vote
        self._by_source[source][fact] = vote
        if self._sig_codes is not None:
            code = self._CODE_TRUE if vote is Vote.TRUE else self._CODE_FALSE
            self._sig_codes[fact] += code << (2 * self._source_pos[source])
        self._invalidate()

    def add_votes(
        self, fact: FactId, votes: Iterable[tuple[SourceId, Vote]]
    ) -> None:
        """Record several votes on ``fact`` in one call.

        Semantically identical to looping :meth:`add_vote`, but pays the
        registration, signature-code and cache-invalidation overhead once
        per fact instead of once per vote — the bulk-ingest path the sparse
        synthetic generator feeds millions of votes through.
        """
        self.add_fact(fact)
        fact_votes = self._by_fact[fact]
        code_delta = 0
        for source, vote in votes:
            if not isinstance(vote, Vote):
                raise TypeError(
                    f"vote must be a Vote, got {type(vote).__name__}"
                )
            existing = fact_votes.get(source)
            if existing is not None:
                if existing is not vote:
                    raise ValueError(
                        f"conflicting vote for fact={fact!r} "
                        f"source={source!r}: {existing} already recorded, "
                        f"attempted {vote}"
                    )
                continue
            self.add_source(source)
            fact_votes[source] = vote
            self._by_source[source][fact] = vote
            if self._sig_codes is not None:
                code = (
                    self._CODE_TRUE if vote is Vote.TRUE else self._CODE_FALSE
                )
                code_delta += code << (2 * self._source_pos[source])
        if self._sig_codes is not None and code_delta:
            self._sig_codes[fact] += code_delta
        self._invalidate()

    @classmethod
    def from_rows(
        cls,
        sources: Iterable[SourceId],
        rows: Mapping[FactId, Iterable[str]],
    ) -> "VoteMatrix":
        """Build a matrix from paper-style table rows.

        ``rows`` maps each fact to a sequence of vote symbols aligned with
        ``sources`` — exactly the layout of the paper's Table 1:

        >>> m = VoteMatrix.from_rows(["s1", "s2"], {"r1": ["T", "-"]})
        >>> m.vote("r1", "s1")
        Vote.TRUE
        >>> m.vote("r1", "s2") is None
        True
        """
        source_list = list(sources)
        matrix = cls()
        for source in source_list:
            matrix.add_source(source)
        for fact, symbols in rows.items():
            symbol_list = list(symbols)
            if len(symbol_list) != len(source_list):
                raise ValueError(
                    f"fact {fact!r}: expected {len(source_list)} vote symbols, "
                    f"got {len(symbol_list)}"
                )
            matrix.add_fact(fact)
            for source, symbol in zip(source_list, symbol_list):
                vote = Vote.from_symbol(symbol)
                if vote is not None:
                    matrix.add_vote(fact, source, vote)
        return matrix

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def facts(self) -> list[FactId]:
        """All registered facts, in registration order.

        The list is cached until the next ``add_*`` call and shared between
        accesses — treat it as read-only.
        """
        if self._facts_cache is None:
            self._facts_cache = list(self._by_fact)
        return self._facts_cache

    @property
    def sources(self) -> list[SourceId]:
        """All registered sources, in registration order.

        The list is cached until the next ``add_*`` call and shared between
        accesses — treat it as read-only.
        """
        if self._sources_cache is None:
            self._sources_cache = list(self._by_source)
        return self._sources_cache

    @property
    def version(self) -> int:
        """Mutation counter: ticks whenever a fact, source or vote is added.

        Derived structures use it to validate cached snapshots of this
        matrix (see :meth:`derived_cache`).
        """
        return self._version

    def derived_cache(self) -> dict:
        """Scratch space for derived structures, cleared on every mutation.

        Callers key their entries by name (e.g. ``"group_arrays"``); because
        the dict is cleared whenever the matrix changes, a present entry is
        always consistent with the current votes.
        """
        return self._derived_cache

    @property
    def num_facts(self) -> int:
        return len(self._by_fact)

    @property
    def num_sources(self) -> int:
        return len(self._by_source)

    @property
    def num_votes(self) -> int:
        """Total number of informative (T or F) votes."""
        return sum(len(votes) for votes in self._by_fact.values())

    def vote(self, fact: FactId, source: SourceId) -> Vote | None:
        """The vote of ``source`` on ``fact``, or ``None`` for ``-``."""
        return self._by_fact.get(fact, {}).get(source)

    def votes_on(self, fact: FactId) -> dict[SourceId, Vote]:
        """All informative votes on ``fact`` as a fresh dict."""
        return dict(self._by_fact.get(fact, {}))

    def votes_by(self, source: SourceId) -> dict[FactId, Vote]:
        """All informative votes cast by ``source`` as a fresh dict."""
        return dict(self._by_source.get(source, {}))

    def iter_votes_by(self, source: SourceId) -> Iterator[tuple[FactId, Vote]]:
        """Iterate the (fact, vote) pairs of ``source`` without copying.

        The non-allocating counterpart of :meth:`votes_by` for hot loops
        (e.g. ``update_trust`` sweeps every source each call); do not mutate
        the matrix while iterating.
        """
        return iter(self._by_source.get(source, _EMPTY_VOTES).items())

    def iter_votes_on(self, fact: FactId) -> Iterator[tuple[SourceId, Vote]]:
        """Iterate the (source, vote) pairs on ``fact`` without copying."""
        return iter(self._by_fact.get(fact, _EMPTY_VOTES).items())

    def voters(self, fact: FactId) -> list[SourceId]:
        """Sources that cast an informative vote on ``fact``."""
        return list(self._by_fact.get(fact, {}))

    def signature(self, fact: FactId) -> Signature:
        """The canonical vote signature of ``fact`` (see :data:`Signature`)."""
        votes = self._by_fact.get(fact, {})
        return tuple(sorted((source, vote.value) for source, vote in votes.items()))

    @property
    def has_signature_codes(self) -> bool:
        """Whether packed signature codes are being maintained.

        ``False`` once the source axis has grown past
        :data:`SIGNATURE_CODE_SOURCE_LIMIT`; grouping consumers must then
        bucket signature tuples instead (see
        :meth:`~repro.core.arrays.GroupIndex.from_matrix`).
        """
        return self._sig_codes is not None

    def signature_codes(self) -> dict[FactId, int]:
        """Packed signature code per fact, in registration order.

        The code packs the fact's votes 2 bits per source column (low bit =
        T vote, high bit = F vote, column = source registration index), so
        two facts have equal codes **iff** they have equal
        :meth:`signature` — grouping facts reduces to partitioning by an
        integer key.  Maintained incrementally on :meth:`add_vote`; the
        returned mapping is the live internal index, treat it as read-only.
        Raises when maintenance was dropped for a wide source axis — check
        :attr:`has_signature_codes` first.
        """
        if self._sig_codes is None:
            raise RuntimeError(
                "signature codes are not maintained past "
                f"{SIGNATURE_CODE_SOURCE_LIMIT} sources; "
                "check has_signature_codes"
            )
        return self._sig_codes

    def source_positions(self) -> dict[SourceId, int]:
        """Column index per source (registration order); read-only."""
        return self._source_pos

    def has_only_affirmative(self, fact: FactId) -> bool:
        """Whether ``fact`` belongs to the paper's F* (T votes only).

        Facts with no votes at all are *not* in F*: F* is defined as facts
        "for which there are T votes only", which presupposes at least one.
        """
        votes = self._by_fact.get(fact, {})
        return bool(votes) and all(v is Vote.TRUE for v in votes.values())

    def affirmative_only_facts(self) -> list[FactId]:
        """Facts in F* — at least one vote and all votes are T."""
        return [f for f in self._by_fact if self.has_only_affirmative(f)]

    def conflicted_facts(self) -> list[FactId]:
        """Facts that received at least one F vote."""
        return [
            f
            for f, votes in self._by_fact.items()
            if any(v is Vote.FALSE for v in votes.values())
        ]

    def __contains__(self, fact: FactId) -> bool:
        return fact in self._by_fact

    def __iter__(self) -> Iterator[FactId]:
        return iter(self._by_fact)

    def __len__(self) -> int:
        return len(self._by_fact)

    def __repr__(self) -> str:
        return (
            f"VoteMatrix(facts={self.num_facts}, sources={self.num_sources}, "
            f"votes={self.num_votes})"
        )

    # ------------------------------------------------------------------
    # Derived statistics (paper Table 3)
    # ------------------------------------------------------------------
    def coverage(self, source: SourceId) -> float:
        """Fraction of all facts the source voted on (Table 3, coverage)."""
        if not self._by_fact:
            return 0.0
        return len(self._by_source.get(source, {})) / len(self._by_fact)

    def overlap(self, source_a: SourceId, source_b: SourceId) -> float:
        """Jaccard overlap of the fact sets of two sources (Table 3).

        The paper describes overlap as "a measure of how much two sources
        have in common"; Jaccard similarity of the voted-fact sets matches
        the reported matrix (diagonal = 1, symmetric, values shrink for
        low-coverage sources such as OpenTable).
        """
        facts_a = set(self._by_source.get(source_a, {}))
        facts_b = set(self._by_source.get(source_b, {}))
        union = facts_a | facts_b
        if not union:
            return 0.0
        return len(facts_a & facts_b) / len(union)
