"""Multi-valued questions and their boolean-fact encoding.

The Hubdub experiment (paper Section 6.2.6, Table 7) is a *multi-valued*
truth-discovery task: each question has several mutually-exclusive candidate
answers and each user votes for one of them.  The paper (following Galland
et al., WSDM 2010) reduces such tasks to the boolean-fact model:

* every candidate answer becomes one boolean fact,
* a user voting for answer *a* of question *q* casts a **T** vote on *a*'s
  fact and an **F** vote on every *sibling* answer of *q* that user is aware
  of,
* exactly one answer per question is true in the ground truth.

:class:`QuestionSet` holds the multi-valued view and performs the encoding;
:func:`predict_answers` maps per-fact probabilities back to a per-question
prediction (argmax), which is how the "number of errors" metric of Table 7
is computed.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.model.dataset import Dataset
from repro.model.matrix import FactId, SourceId, VoteMatrix
from repro.model.votes import Vote


def answer_fact_id(question: str, answer: str) -> FactId:
    """Canonical fact id for a (question, answer) pair."""
    return f"{question}::{answer}"


def split_fact_id(fact: FactId) -> tuple[str, str]:
    """Inverse of :func:`answer_fact_id`."""
    question, sep, answer = fact.partition("::")
    if not sep:
        raise ValueError(f"fact id {fact!r} is not a question::answer id")
    return question, answer


@dataclasses.dataclass
class Question:
    """One multi-answer question.

    Attributes:
        qid: question identifier.
        answers: candidate answer labels (mutually exclusive).
        correct: the true answer, if known.
    """

    qid: str
    answers: list[str]
    correct: str | None = None

    def __post_init__(self) -> None:
        if len(set(self.answers)) != len(self.answers):
            raise ValueError(f"question {self.qid!r} has duplicate answers")
        if self.correct is not None and self.correct not in self.answers:
            raise ValueError(
                f"question {self.qid!r}: correct answer {self.correct!r} "
                f"not among candidates"
            )


class QuestionSet:
    """A collection of questions plus per-user answer votes."""

    def __init__(self, questions: list[Question]) -> None:
        self._questions: dict[str, Question] = {}
        for question in questions:
            if question.qid in self._questions:
                raise ValueError(f"duplicate question id {question.qid!r}")
            self._questions[question.qid] = question
        # user -> question -> chosen answer
        self._votes: dict[SourceId, dict[str, str]] = {}

    @property
    def questions(self) -> list[Question]:
        return list(self._questions.values())

    @property
    def num_questions(self) -> int:
        return len(self._questions)

    @property
    def num_answer_facts(self) -> int:
        return sum(len(q.answers) for q in self._questions.values())

    @property
    def users(self) -> list[SourceId]:
        return list(self._votes)

    def add_user_vote(self, user: SourceId, qid: str, answer: str) -> None:
        """Record that ``user`` picked ``answer`` for question ``qid``."""
        question = self._questions.get(qid)
        if question is None:
            raise KeyError(f"unknown question {qid!r}")
        if answer not in question.answers:
            raise ValueError(f"question {qid!r} has no answer {answer!r}")
        picks = self._votes.setdefault(user, {})
        if qid in picks and picks[qid] != answer:
            raise ValueError(
                f"user {user!r} already answered question {qid!r} with "
                f"{picks[qid]!r}"
            )
        picks[qid] = answer

    # ------------------------------------------------------------------
    # Boolean encoding
    # ------------------------------------------------------------------
    def to_dataset(self, name: str = "questions") -> Dataset:
        """Encode as a boolean-fact :class:`~repro.model.dataset.Dataset`.

        Follows the Galland encoding described in the module docstring.  The
        ground truth marks the correct answer's fact true and its siblings
        false, for every question whose correct answer is known.
        """
        matrix = VoteMatrix()
        for question in self._questions.values():
            for answer in question.answers:
                matrix.add_fact(answer_fact_id(question.qid, answer))
        for user, picks in self._votes.items():
            matrix.add_source(user)
            for qid, chosen in picks.items():
                question = self._questions[qid]
                for answer in question.answers:
                    vote = Vote.TRUE if answer == chosen else Vote.FALSE
                    matrix.add_vote(answer_fact_id(qid, answer), user, vote)
        truth: dict[FactId, bool] = {}
        for question in self._questions.values():
            if question.correct is None:
                continue
            for answer in question.answers:
                truth[answer_fact_id(question.qid, answer)] = answer == question.correct
        return Dataset(matrix=matrix, truth=truth, name=name)


def predict_answers(
    question_set: QuestionSet, probabilities: Mapping[FactId, float]
) -> dict[str, str]:
    """Per-question predicted answer = candidate with the highest probability.

    Candidates missing from ``probabilities`` are treated as probability 0.
    Ties break toward the candidate listed first, making predictions
    deterministic.
    """
    predictions: dict[str, str] = {}
    for question in question_set.questions:
        best_answer = None
        best_prob = float("-inf")
        for answer in question.answers:
            prob = probabilities.get(answer_fact_id(question.qid, answer), 0.0)
            if prob > best_prob:
                best_prob = prob
                best_answer = answer
        assert best_answer is not None, "questions always have >=1 answer"
        predictions[question.qid] = best_answer
    return predictions


@dataclasses.dataclass
class QuestionVerdict:
    """One settled question: the prediction and its winning margin."""

    qid: str
    predicted: str
    probability: float
    runner_up: str | None
    margin: float
    correct: str | None

    @property
    def is_correct(self) -> bool | None:
        """Whether the prediction matches the known answer (None if unknown)."""
        if self.correct is None:
            return None
        return self.predicted == self.correct


def settle_questions(question_set: QuestionSet, corroborator) -> dict[str, QuestionVerdict]:
    """Settle every question with a boolean corroborator.

    Encodes the questions into boolean facts (mutual-exclusion votes), runs
    the corroborator, and argmaxes each question's candidate probabilities.
    This is the full Table 7 pipeline as a single call.

    Args:
        question_set: the multi-answer problem.
        corroborator: any :class:`~repro.core.result.Corroborator`.
    """
    dataset = question_set.to_dataset()
    result = corroborator.run(dataset)
    verdicts: dict[str, QuestionVerdict] = {}
    for question in question_set.questions:
        scored = sorted(
            (
                (result.probabilities.get(answer_fact_id(question.qid, a), 0.0), a)
                for a in question.answers
            ),
            key=lambda pair: (-pair[0], question.answers.index(pair[1])),
        )
        best_prob, best_answer = scored[0]
        runner_prob, runner_answer = scored[1] if len(scored) > 1 else (0.0, None)
        verdicts[question.qid] = QuestionVerdict(
            qid=question.qid,
            predicted=best_answer,
            probability=best_prob,
            runner_up=runner_answer,
            margin=best_prob - runner_prob,
            correct=question.correct,
        )
    return verdicts


def count_answer_errors(
    question_set: QuestionSet, predictions: Mapping[str, str]
) -> int:
    """Galland's "number of errors" metric over answer-facts (Table 7).

    Treating the per-question prediction as asserting its fact true and the
    sibling facts false, count false positives plus false negatives against
    the ground truth.  A wrong prediction on a question contributes 2 errors
    (the wrongly-asserted fact and the missed correct fact); a correct
    prediction contributes 0.
    """
    errors = 0
    for question in question_set.questions:
        if question.correct is None:
            continue
        predicted = predictions.get(question.qid)
        if predicted is None:
            # No prediction: the correct fact is a false negative.
            errors += 1
        elif predicted != question.correct:
            errors += 2
    return errors
