"""Serialisation: load and save datasets and corroboration results.

Two interchange formats:

* **CSV votes** — one row per informative vote (``fact,source,vote``), the
  layout crawl pipelines naturally produce.  Ground truth and golden-set
  membership travel in an optional second CSV (``fact,label,golden``).
* **JSON dataset** — a single self-contained document with votes, truth
  and metadata; round-trips exactly.

Results are saved as JSON (method, probabilities, trust, label overrides,
and — when present — the trust trajectory), so an expensive corroboration
run can be archived and re-analysed without re-running.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib

from repro.core.result import CorroborationResult
from repro.core.trust import TrustTrajectory
from repro.model.dataset import Dataset
from repro.model.matrix import VoteMatrix
from repro.model.votes import Vote

PathLike = str | pathlib.Path


# ---------------------------------------------------------------------------
# CSV votes
# ---------------------------------------------------------------------------
def write_votes_csv(dataset: Dataset, path: PathLike) -> None:
    """Write the informative votes as ``fact,source,vote`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["fact", "source", "vote"])
        for fact in dataset.matrix.facts:
            for source, vote in sorted(dataset.matrix.votes_on(fact).items()):
                writer.writerow([fact, source, vote.value])


def read_votes_csv(
    path: PathLike,
    facts: list[str] | None = None,
    sources: list[str] | None = None,
) -> VoteMatrix:
    """Read a ``fact,source,vote`` CSV into a :class:`VoteMatrix`.

    ``facts`` / ``sources`` pre-register items that may have no votes (a
    CSV cannot represent them otherwise).
    """
    matrix = VoteMatrix()
    for source in sources or []:
        matrix.add_source(source)
    for fact in facts or []:
        matrix.add_fact(fact)
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"fact", "source", "vote"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(
                f"votes CSV must have columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for line_number, row in enumerate(reader, start=2):
            vote = Vote.from_symbol(row["vote"])
            if vote is None:
                raise ValueError(
                    f"line {line_number}: '-' votes must simply be omitted"
                )
            matrix.add_vote(row["fact"], row["source"], vote)
    return matrix


def write_truth_csv(dataset: Dataset, path: PathLike) -> None:
    """Write ground truth as ``fact,label,golden`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["fact", "label", "golden"])
        for fact, label in dataset.truth.items():
            writer.writerow(
                [fact, "true" if label else "false", int(fact in dataset.golden_set)]
            )


def read_truth_csv(path: PathLike) -> tuple[dict[str, bool], frozenset[str]]:
    """Read a ``fact,label,golden`` CSV; returns (truth, golden set)."""
    truth: dict[str, bool] = {}
    golden: set[str] = set()
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"fact", "label"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(
                f"truth CSV must have columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for line_number, row in enumerate(reader, start=2):
            label = row["label"].strip().lower()
            if label not in {"true", "false"}:
                raise ValueError(f"line {line_number}: label must be true/false")
            truth[row["fact"]] = label == "true"
            if int(row.get("golden") or 0):
                golden.add(row["fact"])
    return truth, frozenset(golden)


# ---------------------------------------------------------------------------
# JSON dataset
# ---------------------------------------------------------------------------
def dataset_to_json(dataset: Dataset) -> str:
    """Serialise a dataset (votes, truth, golden set, name) to JSON."""
    votes = {
        fact: {s: v.value for s, v in sorted(dataset.matrix.votes_on(fact).items())}
        for fact in dataset.matrix.facts
    }
    document = {
        "name": dataset.name,
        "sources": dataset.matrix.sources,
        "facts": dataset.matrix.facts,
        "votes": votes,
        "truth": dict(dataset.truth),
        "golden_set": sorted(dataset.golden_set),
    }
    return json.dumps(document, indent=2)


def dataset_from_json(text: str) -> Dataset:
    """Inverse of :func:`dataset_to_json`."""
    document = json.loads(text)
    matrix = VoteMatrix()
    for source in document["sources"]:
        matrix.add_source(source)
    for fact in document["facts"]:
        matrix.add_fact(fact)
    for fact, votes in document["votes"].items():
        for source, symbol in votes.items():
            vote = Vote.from_symbol(symbol)
            if vote is None:
                raise ValueError(f"fact {fact!r}: '-' votes must be omitted")
            matrix.add_vote(fact, source, vote)
    return Dataset(
        matrix=matrix,
        truth={f: bool(v) for f, v in document.get("truth", {}).items()},
        golden_set=frozenset(document.get("golden_set", [])),
        name=document.get("name", "dataset"),
    )


def save_dataset(dataset: Dataset, path: PathLike) -> None:
    """Write :func:`dataset_to_json` output to ``path``."""
    pathlib.Path(path).write_text(dataset_to_json(dataset))


def load_dataset(path: PathLike) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    return dataset_from_json(pathlib.Path(path).read_text())


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
def result_to_json(result: CorroborationResult) -> str:
    """Serialise a corroboration result (probabilities, trust, trajectory)."""
    document = {
        "method": result.method,
        "iterations": result.iterations,
        "probabilities": dict(result.probabilities),
        "trust": dict(result.trust),
        "label_overrides": dict(result.label_overrides),
    }
    if result.trajectory is not None:
        document["trajectory"] = {
            "sources": result.trajectory.sources,
            "history": result.trajectory.as_rows(),
        }
    return json.dumps(document, indent=2)


def result_from_json(text: str) -> CorroborationResult:
    """Inverse of :func:`result_to_json` (round records are not persisted)."""
    document = json.loads(text)
    trajectory = None
    if "trajectory" in document:
        trajectory = TrustTrajectory(document["trajectory"]["sources"])
        for vector in document["trajectory"]["history"]:
            trajectory.record(vector)
    return CorroborationResult(
        method=document["method"],
        probabilities={f: float(p) for f, p in document["probabilities"].items()},
        trust={s: float(t) for s, t in document["trust"].items()},
        iterations=int(document.get("iterations", 0)),
        trajectory=trajectory,
        label_overrides={
            f: bool(v) for f, v in document.get("label_overrides", {}).items()
        },
    )


def save_result(result: CorroborationResult, path: PathLike) -> None:
    """Write :func:`result_to_json` output to ``path``."""
    pathlib.Path(path).write_text(result_to_json(result))


def load_result(path: PathLike) -> CorroborationResult:
    """Read a result previously written by :func:`save_result`."""
    return result_from_json(pathlib.Path(path).read_text())


def dataset_from_csv_strings(votes_csv: str, truth_csv: str | None = None) -> Dataset:
    """Build a dataset from in-memory CSV text (convenience for the CLI)."""
    matrix = VoteMatrix()
    reader = csv.DictReader(io.StringIO(votes_csv))
    for row in reader:
        vote = Vote.from_symbol(row["vote"])
        if vote is not None:
            matrix.add_vote(row["fact"], row["source"], vote)
    truth: dict[str, bool] = {}
    golden: frozenset[str] = frozenset()
    if truth_csv is not None:
        t_reader = csv.DictReader(io.StringIO(truth_csv))
        golden_set = set()
        for row in t_reader:
            truth[row["fact"]] = row["label"].strip().lower() == "true"
            if int(row.get("golden") or 0):
                golden_set.add(row["fact"])
        golden = frozenset(golden_set)
    return Dataset(matrix=matrix, truth=truth, golden_set=golden)
