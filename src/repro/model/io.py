"""Serialisation: load and save datasets and corroboration results.

Two interchange formats:

* **CSV votes** — one row per informative vote (``fact,source,vote``), the
  layout crawl pipelines naturally produce.  Ground truth and golden-set
  membership travel in an optional second CSV (``fact,label,golden``).
* **JSON dataset** — a single self-contained document with votes, truth
  and metadata; round-trips exactly.

Results are saved as JSON (method, probabilities, trust, label overrides,
and — when present — the trust trajectory), so an expensive corroboration
run can be archived and re-analysed without re-running.

All readers take an ``on_error`` policy (:class:`~repro.resilience.errors
.ErrorPolicy`): ``strict`` (default) raises a typed
:class:`~repro.resilience.errors.IngestError` on the first bad row —
today's fail-fast behavior with a reason code and row location attached —
while ``skip`` and ``quarantine`` drop bad rows and account for every one
of them in an :class:`~repro.resilience.errors.IngestReport` (``quarantine``
additionally keeps the rejected payloads for audit).  All writers emit
rows and mapping keys in sorted order (registration-order ``facts`` /
``sources`` arrays excepted — they define reload order), so equal content
always serialises to equal bytes.  Duplicate
``(source, fact)`` pairs are defined behavior: strict raises a
:class:`~repro.resilience.errors.DuplicateVoteError` naming both lines;
the lenient policies keep the first occurrence and report the rest
(``duplicate_vote`` when the repeated vote agrees, ``conflicting_vote``
when it does not).  All writers go through
:func:`~repro.resilience.atomic.atomic_write_text`, so a killed process
never leaves a half-written artifact.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import IO

from repro.core.result import CorroborationResult
from repro.core.trust import TrustTrajectory
from repro.model.dataset import Dataset
from repro.model.matrix import VoteMatrix
from repro.model.votes import Vote
from repro.resilience.atomic import atomic_write_text
from repro.resilience.errors import (
    BAD_DOCUMENT,
    BAD_HEADER,
    BAD_JSON,
    BAD_TRUTH_LABEL,
    BAD_VOTE_SYMBOL,
    CONFLICTING_VOTE,
    DASH_VOTE,
    DUPLICATE_TRUTH,
    DUPLICATE_VOTE,
    IO_ERROR,
    MALFORMED_ROW,
    MISSING_FIELD,
    TRUNCATED_FILE,
    UNKNOWN_FACT,
    DuplicateVoteError,
    ErrorPolicy,
    IngestError,
    IngestReport,
)

PathLike = str | pathlib.Path


def _open_text(source: PathLike | IO[str]) -> tuple[IO[str], bool, str]:
    """Normalise a path-or-handle into ``(handle, owns_handle, name)``."""
    if hasattr(source, "read"):
        handle = source  # type: ignore[assignment]
        return handle, False, str(getattr(source, "name", "<handle>"))
    return open(source, newline=""), True, str(source)


def _prepare_report(
    report: IngestReport | None, name: str, policy: ErrorPolicy
) -> IngestReport:
    report = report if report is not None else IngestReport()
    report.source = name
    report.policy = policy.value
    return report


def _reject(
    policy: ErrorPolicy,
    report: IngestReport,
    *,
    location: str,
    reason: str,
    message: str,
    row: dict | None = None,
    error_cls: type[IngestError] = IngestError,
) -> None:
    """Apply the error policy to one bad row: raise, or record and drop."""
    if policy is ErrorPolicy.STRICT:
        raise error_cls(message, reason=reason, location=location)
    report.record(
        location=location,
        reason=reason,
        message=message,
        row=row if policy is ErrorPolicy.QUARANTINE else None,
    )


# ---------------------------------------------------------------------------
# CSV votes
# ---------------------------------------------------------------------------
def write_votes_csv(dataset: Dataset, path: PathLike) -> None:
    """Write the informative votes as ``fact,source,vote`` rows.

    Rows are emitted in sorted ``(fact, source)`` order, so two datasets
    with the same votes produce byte-identical files regardless of
    registration order — the property the persistent store's
    export → file → import round-trip relies on to stay diffable.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["fact", "source", "vote"])
    for fact in sorted(dataset.matrix.facts):
        for source, vote in sorted(dataset.matrix.votes_on(fact).items()):
            writer.writerow([fact, source, vote.value])
    atomic_write_text(path, buffer.getvalue())


def read_votes_csv(
    path: PathLike | IO[str],
    facts: list[str] | None = None,
    sources: list[str] | None = None,
    *,
    on_error: ErrorPolicy | str = ErrorPolicy.STRICT,
    report: IngestReport | None = None,
) -> VoteMatrix:
    """Read a ``fact,source,vote`` CSV into a :class:`VoteMatrix`.

    ``facts`` / ``sources`` pre-register items that may have no votes (a
    CSV cannot represent them otherwise).  ``path`` may also be an open
    text handle.  ``on_error`` picks the policy for malformed rows; pass a
    :class:`~repro.resilience.errors.IngestReport` as ``report`` to
    collect the per-row accounting under the lenient policies.
    """
    policy = ErrorPolicy.coerce(on_error)
    matrix = VoteMatrix()
    for source in sources or []:
        matrix.add_source(source)
    for fact in facts or []:
        matrix.add_fact(fact)
    handle, owns_handle, name = _open_text(path)
    report = _prepare_report(report, name, policy)
    try:
        reader = csv.DictReader(handle)
        required = {"fact", "source", "vote"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise IngestError(
                f"votes CSV must have columns {sorted(required)}, "
                f"got {reader.fieldnames}",
                reason=BAD_HEADER,
                location="line 1",
            )
        seen: dict[tuple[str, str], tuple[int, Vote]] = {}
        rows = iter(reader)
        while True:
            try:
                row = next(rows)
            except StopIteration:
                break
            except csv.Error as exc:
                location = f"line {reader.line_num}"
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=MALFORMED_ROW,
                    message=f"{location}: malformed CSV row ({exc})",
                )
                report.rows_read += 1
                continue
            except OSError as exc:
                # A file-scoped fault: nothing after this point is
                # readable, so account for it once and stop.
                location = f"line {reader.line_num + 1}"
                if policy is ErrorPolicy.STRICT:
                    raise IngestError(
                        f"{name}: I/O error while reading votes ({exc})",
                        reason=IO_ERROR,
                        location=location,
                    ) from exc
                report.record(
                    location=location,
                    reason=IO_ERROR,
                    message=f"I/O error while reading votes ({exc})",
                )
                break
            line_number = reader.line_num
            location = f"line {line_number}"
            report.rows_read += 1
            fact = row.get("fact")
            source = row.get("source")
            symbol = row.get("vote")
            if not fact or not source or symbol is None:
                missing = [
                    field
                    for field, ok in (
                        ("fact", bool(fact)),
                        ("source", bool(source)),
                        ("vote", symbol is not None),
                    )
                    if not ok
                ]
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=MISSING_FIELD,
                    message=f"{location}: missing field(s) {missing}",
                    row=dict(row),
                )
                continue
            try:
                vote = Vote.from_symbol(symbol)
            except ValueError:
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=BAD_VOTE_SYMBOL,
                    message=f"{location}: unrecognised vote symbol {symbol!r}",
                    row=dict(row),
                )
                continue
            if vote is None:
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=DASH_VOTE,
                    message=f"{location}: '-' votes must simply be omitted",
                    row=dict(row),
                )
                continue
            key = (fact, source)
            if key in seen:
                first_line, first_vote = seen[key]
                reason = DUPLICATE_VOTE if vote is first_vote else CONFLICTING_VOTE
                verb = "duplicate" if vote is first_vote else "conflicting"
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=reason,
                    message=(
                        f"{location}: {verb} vote for fact={fact!r} "
                        f"source={source!r} (first at line {first_line})"
                    ),
                    row=dict(row),
                    error_cls=DuplicateVoteError,
                )
                continue
            seen[key] = (line_number, vote)
            matrix.add_vote(fact, source, vote)
            report.rows_kept += 1
    finally:
        if owns_handle:
            handle.close()
    return matrix


def write_truth_csv(dataset: Dataset, path: PathLike) -> None:
    """Write ground truth as ``fact,label,golden`` rows (sorted by fact)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["fact", "label", "golden"])
    for fact, label in sorted(dataset.truth.items()):
        writer.writerow(
            [fact, "true" if label else "false", int(fact in dataset.golden_set)]
        )
    atomic_write_text(path, buffer.getvalue())


def read_truth_csv(
    path: PathLike | IO[str],
    *,
    on_error: ErrorPolicy | str = ErrorPolicy.STRICT,
    report: IngestReport | None = None,
    known_facts: "set[str] | frozenset[str] | None" = None,
) -> tuple[dict[str, bool], frozenset[str]]:
    """Read a ``fact,label,golden`` CSV; returns (truth, golden set).

    When ``known_facts`` is given, truth rows for facts outside it are
    rejected (``unknown_fact``); with the default ``None`` no membership
    check is performed.  Repeated fact rows keep the first occurrence and
    report the rest (strict raises).
    """
    policy = ErrorPolicy.coerce(on_error)
    truth: dict[str, bool] = {}
    golden: set[str] = set()
    handle, owns_handle, name = _open_text(path)
    report = _prepare_report(report, name, policy)
    try:
        reader = csv.DictReader(handle)
        required = {"fact", "label"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise IngestError(
                f"truth CSV must have columns {sorted(required)}, "
                f"got {reader.fieldnames}",
                reason=BAD_HEADER,
                location="line 1",
            )
        first_seen: dict[str, int] = {}
        rows = iter(reader)
        while True:
            try:
                row = next(rows)
            except StopIteration:
                break
            except csv.Error as exc:
                location = f"line {reader.line_num}"
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=MALFORMED_ROW,
                    message=f"{location}: malformed CSV row ({exc})",
                )
                report.rows_read += 1
                continue
            except OSError as exc:
                location = f"line {reader.line_num + 1}"
                if policy is ErrorPolicy.STRICT:
                    raise IngestError(
                        f"{name}: I/O error while reading truth ({exc})",
                        reason=IO_ERROR,
                        location=location,
                    ) from exc
                report.record(
                    location=location,
                    reason=IO_ERROR,
                    message=f"I/O error while reading truth ({exc})",
                )
                break
            line_number = reader.line_num
            location = f"line {line_number}"
            report.rows_read += 1
            fact = row.get("fact")
            raw_label = row.get("label")
            if not fact or raw_label is None:
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=MISSING_FIELD,
                    message=f"{location}: missing fact or label",
                    row=dict(row),
                )
                continue
            label = raw_label.strip().lower()
            if label not in {"true", "false"}:
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=BAD_TRUTH_LABEL,
                    message=f"{location}: label must be true/false",
                    row=dict(row),
                )
                continue
            if known_facts is not None and fact not in known_facts:
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=UNKNOWN_FACT,
                    message=f"{location}: truth row for unknown fact {fact!r}",
                    row=dict(row),
                )
                continue
            if fact in first_seen:
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=DUPLICATE_TRUTH,
                    message=(
                        f"{location}: duplicate truth row for fact={fact!r} "
                        f"(first at line {first_seen[fact]})"
                    ),
                    row=dict(row),
                )
                continue
            try:
                golden_flag = int(row.get("golden") or 0)
            except ValueError:
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=MALFORMED_ROW,
                    message=f"{location}: golden flag must be an integer",
                    row=dict(row),
                )
                continue
            first_seen[fact] = line_number
            truth[fact] = label == "true"
            if golden_flag:
                golden.add(fact)
            report.rows_kept += 1
    finally:
        if owns_handle:
            handle.close()
    return truth, frozenset(golden)


# ---------------------------------------------------------------------------
# JSON dataset
# ---------------------------------------------------------------------------
def dataset_to_json(dataset: Dataset) -> str:
    """Serialise a dataset (votes, truth, golden set, name) to JSON.

    The ``sources`` and ``facts`` arrays keep registration order — they
    *define* the order a reloaded matrix registers items in, which fixes
    fact-group order and argmax tie breaks, so reordering them would change
    algorithm output on reload.  Every mapping (``votes`` outer and inner,
    ``truth``) and the ``golden_set`` array are emitted key-sorted instead,
    so two datasets with identical content and registration order produce
    byte-identical documents however their dicts were populated.
    """
    votes = {
        fact: {s: v.value for s, v in sorted(dataset.matrix.votes_on(fact).items())}
        for fact in sorted(dataset.matrix.facts)
    }
    document = {
        "name": dataset.name,
        "sources": dataset.matrix.sources,
        "facts": dataset.matrix.facts,
        "votes": votes,
        "truth": dict(sorted(dataset.truth.items())),
        "golden_set": sorted(dataset.golden_set),
    }
    return json.dumps(document, indent=2)


def dataset_from_json(
    text: str,
    *,
    on_error: ErrorPolicy | str = ErrorPolicy.STRICT,
    report: IngestReport | None = None,
) -> Dataset:
    """Inverse of :func:`dataset_to_json`.

    Structural damage (unparseable or truncated JSON, a document that is
    not shaped like a dataset) is unrecoverable and raises a typed
    :class:`~repro.resilience.errors.IngestError` under every policy;
    entry-level damage (bad vote symbols, truth for unknown facts) follows
    ``on_error`` like the CSV readers.
    """
    policy = ErrorPolicy.coerce(on_error)
    report = _prepare_report(report, "<json>", policy)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        truncated = exc.pos >= len(text.rstrip())
        reason = TRUNCATED_FILE if truncated else BAD_JSON
        message = (
            f"dataset JSON is {'truncated' if truncated else 'malformed'}: {exc}"
        )
        report.record(location=f"char {exc.pos}", reason=reason, message=message)
        raise IngestError(message, reason=reason, location=f"char {exc.pos}") from exc
    if not isinstance(document, dict):
        message = f"dataset JSON must be an object, got {type(document).__name__}"
        report.record(location="document", reason=BAD_DOCUMENT, message=message)
        raise IngestError(message, reason=BAD_DOCUMENT, location="document")
    for key, expected in (("sources", list), ("facts", list), ("votes", dict)):
        if not isinstance(document.get(key), expected):
            message = (
                f"dataset JSON is missing a valid {key!r} "
                f"({expected.__name__} required)"
            )
            report.record(location=key, reason=BAD_DOCUMENT, message=message)
            raise IngestError(message, reason=BAD_DOCUMENT, location=key)
    matrix = VoteMatrix()
    for source in document["sources"]:
        matrix.add_source(str(source))
    for fact in document["facts"]:
        matrix.add_fact(str(fact))
    for fact, votes in document["votes"].items():
        if not isinstance(votes, dict):
            _reject(
                policy,
                report,
                location=f"votes[{fact!r}]",
                reason=BAD_DOCUMENT,
                message=f"votes[{fact!r}] must be an object",
            )
            continue
        for source, symbol in votes.items():
            report.rows_read += 1
            location = f"votes[{fact!r}][{source!r}]"
            try:
                vote = Vote.from_symbol(symbol) if isinstance(symbol, str) else None
            except ValueError:
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=BAD_VOTE_SYMBOL,
                    message=f"{location}: unrecognised vote symbol {symbol!r}",
                    row={"fact": fact, "source": source, "vote": symbol},
                )
                continue
            if vote is None:
                if isinstance(symbol, str):
                    message = f"fact {fact!r}: '-' votes must be omitted"
                    reason = DASH_VOTE
                else:
                    message = f"{location}: vote symbol must be a string"
                    reason = BAD_VOTE_SYMBOL
                _reject(
                    policy,
                    report,
                    location=location,
                    reason=reason,
                    message=message,
                    row={"fact": fact, "source": source, "vote": symbol},
                )
                continue
            matrix.add_vote(fact, source, vote)
            report.rows_kept += 1
    raw_truth = document.get("truth", {})
    if not isinstance(raw_truth, dict):
        message = "dataset JSON 'truth' must be an object"
        report.record(location="truth", reason=BAD_DOCUMENT, message=message)
        raise IngestError(message, reason=BAD_DOCUMENT, location="truth")
    truth: dict[str, bool] = {}
    for fact, value in raw_truth.items():
        if policy is not ErrorPolicy.STRICT:
            report.rows_read += 1
            if fact not in matrix:
                _reject(
                    policy,
                    report,
                    location=f"truth[{fact!r}]",
                    reason=UNKNOWN_FACT,
                    message=f"truth entry for unknown fact {fact!r}",
                    row={"fact": fact, "label": value},
                )
                continue
            report.rows_kept += 1
        truth[fact] = bool(value)
    raw_golden = document.get("golden_set", [])
    if not isinstance(raw_golden, list):
        message = "dataset JSON 'golden_set' must be an array"
        report.record(location="golden_set", reason=BAD_DOCUMENT, message=message)
        raise IngestError(message, reason=BAD_DOCUMENT, location="golden_set")
    golden: list[str] = []
    for fact in raw_golden:
        if policy is not ErrorPolicy.STRICT and fact not in truth:
            _reject(
                policy,
                report,
                location=f"golden_set[{fact!r}]",
                reason=UNKNOWN_FACT,
                message=f"golden-set entry for fact without truth: {fact!r}",
                row={"fact": fact},
            )
            continue
        golden.append(fact)
    return Dataset(
        matrix=matrix,
        truth=truth,
        golden_set=frozenset(golden),
        name=str(document.get("name", "dataset")),
    )


def save_dataset(dataset: Dataset, path: PathLike) -> None:
    """Write :func:`dataset_to_json` output to ``path`` (atomically)."""
    atomic_write_text(path, dataset_to_json(dataset))


def load_dataset(
    path: PathLike,
    *,
    on_error: ErrorPolicy | str = ErrorPolicy.STRICT,
    report: IngestReport | None = None,
) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    policy = ErrorPolicy.coerce(on_error)
    report = _prepare_report(report, str(path), policy)
    try:
        text = pathlib.Path(path).read_text()
    except OSError as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        message = f"{path}: I/O error while reading dataset ({exc})"
        report.record(location=str(path), reason=IO_ERROR, message=message)
        raise IngestError(message, reason=IO_ERROR, location=str(path)) from exc
    dataset = dataset_from_json(text, on_error=policy, report=report)
    report.source = str(path)
    return dataset


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
def result_to_json(result: CorroborationResult) -> str:
    """Serialise a corroboration result (probabilities, trust, trajectory).

    Mappings are emitted key-sorted so archived results are diffable.
    """
    document = {
        "method": result.method,
        "iterations": result.iterations,
        "probabilities": dict(sorted(result.probabilities.items())),
        "trust": dict(sorted(result.trust.items())),
        "label_overrides": dict(sorted(result.label_overrides.items())),
    }
    if result.trajectory is not None:
        document["trajectory"] = {
            "sources": result.trajectory.sources,
            "history": result.trajectory.as_rows(),
        }
    return json.dumps(document, indent=2)


def result_from_json(text: str) -> CorroborationResult:
    """Inverse of :func:`result_to_json` (round records are not persisted)."""
    document = json.loads(text)
    trajectory = None
    if "trajectory" in document:
        trajectory = TrustTrajectory(document["trajectory"]["sources"])
        for vector in document["trajectory"]["history"]:
            trajectory.record(vector)
    return CorroborationResult(
        method=document["method"],
        probabilities={f: float(p) for f, p in document["probabilities"].items()},
        trust={s: float(t) for s, t in document["trust"].items()},
        iterations=int(document.get("iterations", 0)),
        trajectory=trajectory,
        label_overrides={
            f: bool(v) for f, v in document.get("label_overrides", {}).items()
        },
    )


def save_result(result: CorroborationResult, path: PathLike) -> None:
    """Write :func:`result_to_json` output to ``path`` (atomically)."""
    atomic_write_text(path, result_to_json(result))


def load_result(path: PathLike) -> CorroborationResult:
    """Read a result previously written by :func:`save_result`."""
    return result_from_json(pathlib.Path(path).read_text())


def dataset_from_csv_strings(
    votes_csv: str,
    truth_csv: str | None = None,
    *,
    on_error: ErrorPolicy | str = ErrorPolicy.SKIP,
    report: IngestReport | None = None,
) -> Dataset:
    """Build a dataset from in-memory CSV text (convenience for the CLI).

    Historically lenient: the default policy is ``skip``, so dash votes
    (and any other malformed rows) are dropped rather than raising.
    """
    policy = ErrorPolicy.coerce(on_error)
    report = _prepare_report(report, "<csv strings>", policy)
    matrix = read_votes_csv(
        io.StringIO(votes_csv), on_error=policy, report=report
    )
    report.source = "<csv strings>"
    truth: dict[str, bool] = {}
    golden: frozenset[str] = frozenset()
    if truth_csv is not None:
        truth, golden = read_truth_csv(
            io.StringIO(truth_csv), on_error=policy, report=report
        )
        report.source = "<csv strings>"
    return Dataset(matrix=matrix, truth=truth, golden_set=golden)
