"""Data model: votes, sparse vote matrices, datasets, multi-valued claims."""

from repro.model.claims import (
    Question,
    QuestionSet,
    QuestionVerdict,
    answer_fact_id,
    count_answer_errors,
    predict_answers,
    settle_questions,
    split_fact_id,
)
from repro.model.dataset import Dataset
from repro.model.matrix import FactId, Signature, SourceId, VoteMatrix
from repro.model.votes import F, T, Vote

__all__ = [
    "Dataset",
    "F",
    "FactId",
    "Question",
    "QuestionSet",
    "QuestionVerdict",
    "Signature",
    "SourceId",
    "T",
    "Vote",
    "VoteMatrix",
    "answer_fact_id",
    "count_answer_errors",
    "predict_answers",
    "settle_questions",
    "split_fact_id",
]
