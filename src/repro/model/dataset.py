"""Problem instances: a vote matrix plus (optional) ground truth.

A :class:`Dataset` is what every corroborator consumes and what every
dataset generator in :mod:`repro.datasets` produces.  Ground truth is kept
*outside* the vote matrix on purpose: algorithms must never be able to reach
it, while the evaluation harness needs it to compute precision / recall /
accuracy and trust-score MSE.

The paper evaluates the real-world experiment on a "golden set" — a small
labelled subset (601 of 36,916 listings) — while the corroborators run over
the full dataset.  :attr:`Dataset.golden_set` models that split.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping

from repro.model.matrix import FactId, SourceId, VoteMatrix
from repro.model.votes import Vote


@dataclasses.dataclass
class Dataset:
    """A corroboration problem instance.

    Attributes:
        matrix: the observed votes.
        truth: ground-truth label per fact, where known.  May cover all
            facts (synthetic data) or only a golden subset (real-world
            style data).
        golden_set: the facts on which quality metrics are computed.  When
            empty, metrics default to every fact present in ``truth``.
        name: human-readable label used by the experiment harness.
    """

    matrix: VoteMatrix
    truth: dict[FactId, bool] = dataclasses.field(default_factory=dict)
    golden_set: frozenset[FactId] = frozenset()
    name: str = "dataset"

    def __post_init__(self) -> None:
        unknown = [f for f in self.truth if f not in self.matrix]
        if unknown:
            raise ValueError(
                f"truth labels refer to {len(unknown)} facts absent from the "
                f"matrix (e.g. {unknown[0]!r})"
            )
        missing_truth = [f for f in self.golden_set if f not in self.truth]
        if missing_truth:
            raise ValueError(
                f"golden set contains {len(missing_truth)} facts with no "
                f"truth label (e.g. {missing_truth[0]!r})"
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def facts(self) -> list[FactId]:
        return self.matrix.facts

    @property
    def sources(self) -> list[SourceId]:
        return self.matrix.sources

    def evaluation_facts(self) -> list[FactId]:
        """Facts on which quality metrics are computed.

        The golden set when one is defined, otherwise every fact with a
        truth label.
        """
        if self.golden_set:
            return sorted(self.golden_set)
        return [f for f in self.matrix.facts if f in self.truth]

    def source_accuracy(self, source: SourceId, restrict_to_golden: bool = True) -> float | None:
        """Ground-truth accuracy of a source's votes (Table 3 bottom row).

        A T vote on a true fact or an F vote on a false fact counts as
        correct.  Returns ``None`` if the source has no votes on labelled
        facts in scope.
        """
        scope: Iterable[FactId]
        if restrict_to_golden and self.golden_set:
            scope = self.golden_set
        else:
            scope = self.truth
        scope_set = set(scope)
        correct = 0
        total = 0
        for fact, vote in self.matrix.votes_by(source).items():
            if fact not in scope_set or fact not in self.truth:
                continue
            total += 1
            if (vote is Vote.TRUE) == self.truth[fact]:
                correct += 1
        if total == 0:
            return None
        return correct / total

    def true_source_accuracies(self) -> dict[SourceId, float | None]:
        """Ground-truth accuracy for every source (used for MSE, Eq 10)."""
        return {s: self.source_accuracy(s) for s in self.matrix.sources}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        sources: Iterable[SourceId],
        rows: Mapping[FactId, Iterable[str]],
        truth: Mapping[FactId, bool] | None = None,
        name: str = "dataset",
    ) -> "Dataset":
        """Build a fully-labelled dataset from paper-style table rows."""
        matrix = VoteMatrix.from_rows(sources, rows)
        return cls(matrix=matrix, truth=dict(truth or {}), name=name)

    def restricted_to(self, facts: Iterable[FactId], name: str | None = None) -> "Dataset":
        """A new dataset containing only ``facts`` (votes, truth, golden set).

        Useful for training ML baselines on the golden set only, as the
        paper does.
        """
        keep = set(facts)
        missing = keep - set(self.matrix.facts)
        if missing:
            raise KeyError(f"{len(missing)} facts not in dataset (e.g. {next(iter(missing))!r})")
        sub = VoteMatrix()
        for source in self.matrix.sources:
            sub.add_source(source)
        for fact in self.matrix.facts:
            if fact not in keep:
                continue
            sub.add_fact(fact)
            for source, vote in self.matrix.votes_on(fact).items():
                sub.add_vote(fact, source, vote)
        return Dataset(
            matrix=sub,
            truth={f: v for f, v in self.truth.items() if f in keep},
            golden_set=frozenset(f for f in self.golden_set if f in keep),
            name=name or f"{self.name}[{len(keep)} facts]",
        )

    def summary(self) -> str:
        """One-line description used by examples and the harness."""
        n_fstar = len(self.matrix.affirmative_only_facts())
        return (
            f"{self.name}: {self.matrix.num_facts} facts, "
            f"{self.matrix.num_sources} sources, {self.matrix.num_votes} votes, "
            f"{n_fstar} affirmative-only facts, "
            f"{len(self.truth)} labelled, golden set {len(self.golden_set)}"
        )
