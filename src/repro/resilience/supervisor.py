"""Error isolation and budget enforcement for experiment sweeps.

A sweep over a dozen corroborators must not die because one of them raises,
diverges to NaN trust, or spins past its budget — the remaining methods'
results are still valid science.  :class:`Supervision` configures how
:func:`repro.eval.harness.run_methods` guards each method:

* **error isolation** (on by default) — an exception inside ``method.run``
  becomes a structured :class:`~repro.eval.harness.MethodRun` failure row
  instead of aborting the sweep;
* **NaN/inf watchdog** (on by default) — a result whose trust vector or
  probabilities contain non-finite values is demoted to a failure
  (:class:`MethodDiverged`), because a NaN trust silently poisons every
  downstream table;
* **iteration cap / wall-clock budget** (opt-in) — enforced *cooperatively*
  by interposing :class:`GuardedRunLog` between the method and the run
  ledger: every ``iteration`` / ``trust`` / ``round`` record the method
  emits is a progress tick at which the guard may abort with
  :class:`MethodIterationLimit` or :class:`MethodTimeout`.  Records emitted
  before the abort are already in the ledger, so a killed method leaves its
  partial trail behind.

The guard is only interposed when a cap or budget is actually configured,
so the default path adds zero per-round overhead and stays bit-identical
to an unsupervised run.
"""

from __future__ import annotations

import dataclasses
import math
import time

from repro.resilience.errors import ResilienceError


class MethodAborted(ResilienceError):
    """Base class for supervisor-initiated aborts of one method run."""


class MethodDiverged(MethodAborted):
    """Non-finite trust or probability detected (NaN/inf watchdog)."""


class MethodTimeout(MethodAborted):
    """The method exceeded its wall-clock budget (checked at each tick)."""


class MethodIterationLimit(MethodAborted):
    """The method emitted more progress ticks than its iteration cap."""


#: Ledger record kinds that count as one unit of method progress.
_TICK_KINDS = frozenset({"iteration", "trust", "round"})


@dataclasses.dataclass(frozen=True)
class Supervision:
    """How :func:`~repro.eval.harness.run_methods` guards each method.

    Attributes:
        isolate_errors: catch exceptions from ``method.run`` and record
            them as failure rows instead of propagating (default on).
        nan_watchdog: scan each completed result's trust vector and
            probabilities for NaN/inf and demote divergent results to
            failures (default on); when a cap or budget activates the
            in-run guard, ledger records are scanned too, aborting a
            diverging method *before* it completes.
        max_iterations: abort a method after this many progress ticks
            (``iteration`` / ``trust`` / ``round`` ledger records).
        wall_clock_budget_s: abort a method once it has run longer than
            this many seconds (checked cooperatively at each tick).
    """

    isolate_errors: bool = True
    nan_watchdog: bool = True
    max_iterations: int | None = None
    wall_clock_budget_s: float | None = None

    @property
    def needs_guard(self) -> bool:
        """Whether the in-run ledger guard must be interposed."""
        return self.max_iterations is not None or self.wall_clock_budget_s is not None


#: Default supervision: isolate failures, watch for NaN, no budgets.
SUPERVISED = Supervision()

#: Historical fail-fast behavior: first exception aborts the sweep.
FAIL_FAST = Supervision(isolate_errors=False, nan_watchdog=False)


def _non_finite(value: object) -> bool:
    return isinstance(value, float) and not math.isfinite(value)


class GuardedRunLog:
    """Runlog proxy that turns each emitted record into a progress tick.

    Wraps the sweep's real ledger (or the null ledger) and forwards every
    record unchanged; on the way through it counts ticks against the
    iteration cap, checks the wall-clock deadline, and — when the NaN
    watchdog is on — scans the record's float payloads (including trust
    vectors) for non-finite values.  Aborts raise out of the method's own
    ``emit`` call, so the method stops exactly at the offending round and
    its earlier records are already durable.
    """

    enabled = True  # keeps instrumented code emitting even over NULL_RUNLOG

    def __init__(self, inner, supervision: Supervision, method_name: str) -> None:
        self._inner = inner
        self._supervision = supervision
        self._method = method_name
        self._ticks = 0
        self._deadline: float | None = None
        if supervision.wall_clock_budget_s is not None:
            self._deadline = time.monotonic() + supervision.wall_clock_budget_s

    @property
    def ticks(self) -> int:
        return self._ticks

    def emit(self, kind: str, **fields) -> None:
        self._inner.emit(kind, **fields)
        if kind not in _TICK_KINDS:
            return
        self._ticks += 1
        supervision = self._supervision
        if (
            supervision.max_iterations is not None
            and self._ticks > supervision.max_iterations
        ):
            raise MethodIterationLimit(
                f"{self._method}: exceeded iteration cap of "
                f"{supervision.max_iterations}"
            )
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise MethodTimeout(
                f"{self._method}: exceeded wall-clock budget of "
                f"{supervision.wall_clock_budget_s}s"
            )
        if supervision.nan_watchdog:
            for key, value in fields.items():
                if _non_finite(value):
                    raise MethodDiverged(
                        f"{self._method}: non-finite {key} at tick {self._ticks}"
                    )
                if isinstance(value, dict):
                    for sub_key, sub_value in value.items():
                        if _non_finite(sub_value):
                            raise MethodDiverged(
                                f"{self._method}: non-finite {key}[{sub_key!r}] "
                                f"at tick {self._ticks}"
                            )

    def close(self) -> None:  # the sweep owns the inner ledger's lifecycle
        pass

    def __enter__(self) -> "GuardedRunLog":
        return self

    def __exit__(self, *exc) -> bool:
        return False


def scan_result_non_finite(result) -> str | None:
    """First non-finite trust/probability in a result, or ``None``.

    Used by the post-run NaN watchdog: a diverged method can still hand
    back a structurally valid :class:`~repro.core.result.CorroborationResult`
    whose trust vector is NaN, and that must not reach the metric tables.
    """
    for source, trust in result.trust.items():
        if _non_finite(trust):
            return f"trust[{source!r}] = {trust!r}"
    for fact, probability in result.probabilities.items():
        if _non_finite(probability):
            return f"probabilities[{fact!r}] = {probability!r}"
    return None
