"""Round-level checkpoint/resume for the incremental algorithm.

A :class:`~repro.core.session.CorroborationSession` can snapshot its entire
round state (trust ledger, per-source counters, remaining fact groups,
trajectory, committed rounds, and any selection-strategy RNG state) into a
plain-JSON document; a fresh session restored from that document continues
**bit-identically** to the uninterrupted run, on both the scalar and array
backends — same probabilities, labels, tie breaks, trust trajectories and
round records (the resilience test suite asserts exactly this).  Exactness
rests on two facts: Python's ``json`` round-trips every finite float to the
identical bits (shortest-repr encoding), and the engine's derived arrays
(size-scaled incidence matrices, ΔH caches) are recomputed from the
snapshot with the same elementwise operations the live session uses.

:class:`CheckpointManager` owns the on-disk artifact: one rolling
``checkpoint.json`` per directory, written crash-safely through
:func:`~repro.resilience.atomic.atomic_write_text` after every round, so a
killed process always leaves either the previous or the new complete
checkpoint — never a half-written one.  Snapshots embed a fingerprint of
the vote matrix and the session parameters; resuming against a different
dataset or configuration raises
:class:`~repro.resilience.errors.CheckpointError` instead of silently
diverging.

See ``docs/robustness.md`` for the checkpoint format and compatibility
rules.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

from repro.model.dataset import Dataset
from repro.resilience.atomic import atomic_write_text
from repro.resilience.errors import CheckpointError

#: Bump whenever the snapshot layout changes incompatibly.  A manager
#: refuses to load a checkpoint with a different version (the safe default
#: for a format that encodes algorithm state bit-exactly).
CHECKPOINT_SCHEMA_VERSION = 1

#: Rolling checkpoint filename inside a checkpoint directory.
CHECKPOINT_FILENAME = "checkpoint.json"


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content hash of the vote matrix (sources, facts, votes).

    The corroboration run is a pure function of the vote matrix and the
    session parameters, so this is exactly the state a checkpoint must be
    validated against (ground-truth labels never influence the run).  The
    hash streams the packed per-fact signature codes — the same structure
    the array engine groups by — so it is cheap even at crawl scale.
    """
    matrix = dataset.matrix
    digest = hashlib.sha256()
    digest.update(json.dumps(matrix.sources).encode())
    codes = matrix.signature_codes()
    for fact in matrix.facts:
        digest.update(fact.encode())
        digest.update(b"\x00")
        digest.update(str(codes[fact]).encode())
        digest.update(b"\x01")
    return digest.hexdigest()


class CheckpointManager:
    """Owns the rolling checkpoint file of one corroboration run.

    Usage::

        manager = CheckpointManager("ckpt-dir")
        session = method.session(dataset)
        if resume and (snapshot := manager.load()) is not None:
            session.restore(snapshot)
        result = session.run_to_completion(checkpoint=manager)

    ``save`` is called by the session after every committed round (and is
    safe to call manually between ``step()`` calls); ``load`` returns the
    last complete snapshot or ``None`` when none exists yet.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        *,
        fsync: bool = True,
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._every = every
        self._saves_requested = 0

    @property
    def path(self) -> pathlib.Path:
        return self.directory / CHECKPOINT_FILENAME

    def save(self, session, *, force: bool = False) -> pathlib.Path | None:
        """Snapshot ``session`` and write it atomically; returns the path.

        With ``every=k`` only every k-th call actually writes (big sessions
        can make per-round snapshots expensive); a call on a completed
        session, or with ``force=True``, always writes.  Returns ``None``
        when the call was throttled away.
        """
        self._saves_requested += 1
        due = self._saves_requested % self._every == 0
        if not (due or force or session.done):
            return None
        payload = {
            "checkpoint_schema_version": CHECKPOINT_SCHEMA_VERSION,
            "session": session.snapshot(),
        }
        atomic_write_text(
            self.path, json.dumps(payload, separators=(",", ":")), fsync=self._fsync
        )
        return self.path

    def load(self) -> dict | None:
        """The last complete session snapshot, or ``None`` if none exists.

        Raises :class:`CheckpointError` when a file exists but is not a
        valid checkpoint (corrupt JSON, wrong schema version) — a corrupt
        checkpoint must be surfaced, not silently treated as a cold start.
        """
        if not self.path.exists():
            return None
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint {self.path}: {exc}") from exc
        if not isinstance(payload, dict) or "session" not in payload:
            raise CheckpointError(f"{self.path} is not a session checkpoint")
        version = payload.get("checkpoint_schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"{self.path}: checkpoint schema version {version!r} is not "
                f"supported (expected {CHECKPOINT_SCHEMA_VERSION})"
            )
        return payload["session"]

    def clear(self) -> None:
        """Delete the checkpoint file (e.g. after a successful finalize)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
