"""Circuit breaker for the refresh path of the corroboration service.

The serving stack must keep answering queries even when refreshes fail
(a poisoned batch, a storage hiccup, an injected fault): Dong et al.'s
Knowledge-Based Trust line stresses that trust estimates stay *useful*
under partial failure as long as staleness is explicit.  The breaker is
the mechanism: consecutive refresh failures trip it **open**, the
service keeps serving the last-good snapshot (marked ``stale``), and
after an exponentially backed-off cool-down the breaker **half-opens**
to let exactly one probe refresh through.  A clean probe closes the
breaker; a failed probe re-opens it with a doubled cool-down.

States
------
``closed``
    Healthy: refreshes run normally.  ``failure_threshold`` consecutive
    failures trip the breaker open.
``open``
    Refreshes are skipped until the cool-down elapses
    (``retry_in`` → seconds remaining).
``half_open``
    Cool-down elapsed: the next refresh is a probe.  Success closes the
    breaker and resets the backoff; failure re-opens it with the
    backoff doubled (capped at ``max_backoff_s``).

The clock is injectable (``clock=time.monotonic`` by default) so tests
can drive open → half-open transitions deterministically without
sleeping.  The breaker itself is not locked: the service serializes
every call behind its own RLock.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["BREAKER_STATES", "CircuitBreaker"]

#: The breaker states, in lifecycle order.
BREAKER_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Consecutive-failure breaker with exponential-backoff half-opening."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        backoff_s: float = 1.0,
        max_backoff_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if backoff_s <= 0:
            raise ValueError("backoff_s must be > 0")
        self.failure_threshold = failure_threshold
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0
        self.recoveries = 0
        self.last_error: str | None = None
        self._opened_at: float | None = None
        self._current_backoff = backoff_s

    def allow(self) -> bool:
        """May a protected call proceed right now?

        Transitions ``open`` → ``half_open`` as a side effect once the
        cool-down has elapsed, so a ``True`` answer on an open breaker
        means "this call is the probe".
        """
        if self.state == "closed":
            return True
        if self.state == "open" and self.retry_in() <= 0.0:
            self.state = "half_open"
        return self.state == "half_open"

    def retry_in(self) -> float:
        """Seconds until the next probe is allowed (0.0 when allowed)."""
        if self.state != "open" or self._opened_at is None:
            return 0.0
        remaining = self._current_backoff - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def record_success(self) -> None:
        """A protected call succeeded: close and reset the backoff."""
        if self.state != "closed":
            self.recoveries += 1
        self.state = "closed"
        self.consecutive_failures = 0
        self.last_error = None
        self._opened_at = None
        self._current_backoff = self.backoff_s

    def record_failure(self, error: str | None = None) -> bool:
        """A protected call failed; returns True when this trips/re-opens.

        A half-open probe failure re-opens immediately with the backoff
        doubled; in the closed state the breaker only opens once
        ``failure_threshold`` consecutive failures accumulate.
        """
        self.consecutive_failures += 1
        if error is not None:
            self.last_error = error
        if self.state == "half_open":
            self._current_backoff = min(
                self._current_backoff * 2.0, self.max_backoff_s
            )
            self._open()
            return True
        if self.state == "closed" and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self._open()
            return True
        return False

    def _open(self) -> None:
        self.state = "open"
        self.trips += 1
        self._opened_at = self._clock()

    def to_record(self) -> dict:
        """JSON-ready snapshot for ``/healthz`` / ``/statusz`` / runlog."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "retry_in_seconds": round(self.retry_in(), 6),
            "backoff_seconds": self._current_backoff,
            "last_error": self.last_error,
        }
