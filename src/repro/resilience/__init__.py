"""Resilience layer: validated ingestion, checkpoint/resume, supervision.

The ROADMAP north-star is a corroboration *service*, and services meet
dirty inputs, kills, and diverging methods as a matter of course.  This
package holds the shared machinery the rest of the library threads
through:

* :mod:`repro.resilience.errors` — typed ingest errors, reason codes,
  the ``strict`` / ``skip`` / ``quarantine`` :class:`ErrorPolicy`, and the
  :class:`IngestReport` ledger payload;
* :mod:`repro.resilience.atomic` — crash-safe whole-file writes
  (temp file + ``os.replace``) used by every JSON artifact;
* :mod:`repro.resilience.checkpoint` — round-level session snapshots and
  the rolling :class:`CheckpointManager`;
* :mod:`repro.resilience.supervisor` — per-method error isolation,
  NaN/inf watchdogs, iteration caps and wall-clock budgets for sweeps;
* :mod:`repro.resilience.faults` — seeded :class:`FaultPlan` fault
  injection powering the chaos test suite;
* :mod:`repro.resilience.breaker` — the :class:`CircuitBreaker` guarding
  the serving refresh path (trip → degraded reads → half-open probe →
  recovery).

See ``docs/robustness.md`` for the full story.
"""

from repro.resilience.atomic import atomic_write_text
from repro.resilience.breaker import BREAKER_STATES, CircuitBreaker
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    dataset_fingerprint,
)
from repro.resilience.errors import (
    REASON_CODES,
    CheckpointError,
    DuplicateVoteError,
    ErrorPolicy,
    FaultInjected,
    IngestError,
    IngestReport,
    ResilienceError,
    RowIssue,
)
from repro.resilience.faults import (
    DivergingCorroborator,
    FailingCorroborator,
    FaultPlan,
    FlakyTextHandle,
    InjectedFault,
    RefreshFaults,
    SlowCorroborator,
)
from repro.resilience.supervisor import (
    FAIL_FAST,
    SUPERVISED,
    GuardedRunLog,
    MethodAborted,
    MethodDiverged,
    MethodIterationLimit,
    MethodTimeout,
    Supervision,
    scan_result_non_finite,
)

__all__ = [
    "BREAKER_STATES",
    "CHECKPOINT_SCHEMA_VERSION",
    "CircuitBreaker",
    "FAIL_FAST",
    "REASON_CODES",
    "SUPERVISED",
    "CheckpointError",
    "CheckpointManager",
    "DivergingCorroborator",
    "DuplicateVoteError",
    "ErrorPolicy",
    "FailingCorroborator",
    "FaultInjected",
    "FaultPlan",
    "FlakyTextHandle",
    "GuardedRunLog",
    "IngestError",
    "IngestReport",
    "InjectedFault",
    "MethodAborted",
    "MethodDiverged",
    "MethodIterationLimit",
    "MethodTimeout",
    "RefreshFaults",
    "ResilienceError",
    "RowIssue",
    "Supervision",
    "atomic_write_text",
    "dataset_fingerprint",
    "scan_result_non_finite",
    "SlowCorroborator",
]
