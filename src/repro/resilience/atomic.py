"""Crash-safe file writes: write to a temp file, then ``os.replace``.

A process killed halfway through ``Path.write_text`` leaves a truncated
file — for a dataset, a result, or a checkpoint that means the artifact is
silently corrupt and a resumed run starts from garbage.  Every whole-file
JSON artifact in this library therefore goes through
:func:`atomic_write_text`: the bytes land in a temporary sibling file,
are flushed (and optionally fsynced) to disk, and only then renamed over
the destination.  ``os.replace`` is atomic on POSIX and Windows, so a
reader — or a resumed run — observes either the complete old content or
the complete new content, never a prefix.

The append-only JSONL run ledger cannot be replaced wholesale (appending
must not rewrite history); its crash-safety story is one-``write``-per
-record plus a truncation-tolerant reader — see
:mod:`repro.obs.runlog`.
"""

from __future__ import annotations

import os
import pathlib
import tempfile

PathLike = str | pathlib.Path


def atomic_write_text(
    path: PathLike, text: str, *, fsync: bool = True, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file is created in the destination directory so the
    final rename never crosses a filesystem boundary.  On any failure the
    temporary file is removed and the destination is left exactly as it
    was.

    Args:
        path: destination file.
        text: full new content.
        fsync: flush the data to disk before the rename (pass ``False``
            only where durability across power loss does not matter —
            process kills are already covered without it).
    """
    destination = pathlib.Path(path)
    fd, temp_name = tempfile.mkstemp(
        prefix=destination.name + ".", suffix=".tmp", dir=destination.parent
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(temp_name, destination)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
