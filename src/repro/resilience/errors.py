"""Typed failure vocabulary of the resilience layer.

Real corroboration inputs are dirty — the truth-discovery literature (Li et
al.'s survey, Dong et al.'s Knowledge-Based Trust) treats extraction noise
and partial reads as the normal case — so every recoverable failure in this
library is classified by a *reason code* and carried by a typed exception.
Three rules keep the rest of the codebase simple:

* every ingest failure is an :class:`IngestError` (a ``ValueError``
  subclass, so pre-resilience callers that caught ``ValueError`` keep
  working) tagged with a reason code from :data:`REASON_CODES` and the
  location of the offending row;
* an :class:`ErrorPolicy` decides what a reader does with a bad row:
  ``strict`` raises (the default — today's fail-fast behavior), ``skip``
  drops the row and counts it, ``quarantine`` drops the row and keeps its
  payload for audit;
* whatever was dropped is accounted for in an :class:`IngestReport` that
  serialises into the JSONL run ledger (``ingest_report`` records), so a
  completed ingest always says exactly which rows it rejected and why.
"""

from __future__ import annotations

import dataclasses
import enum


# ---------------------------------------------------------------------------
# Reason codes
# ---------------------------------------------------------------------------
#: Machine-readable reason codes for rejected input rows.  Stable strings:
#: they land in ledgers and quarantine reports that outlive the process.
BAD_HEADER = "bad_header"
BAD_VOTE_SYMBOL = "bad_vote_symbol"
DASH_VOTE = "dash_vote"
DUPLICATE_VOTE = "duplicate_vote"
CONFLICTING_VOTE = "conflicting_vote"
MISSING_FIELD = "missing_field"
MALFORMED_ROW = "malformed_row"
BAD_TRUTH_LABEL = "bad_truth_label"
DUPLICATE_TRUTH = "duplicate_truth"
UNKNOWN_FACT = "unknown_fact"
BAD_JSON = "bad_json"
BAD_DOCUMENT = "bad_document"
TRUNCATED_FILE = "truncated_file"
IO_ERROR = "io_error"
#: A vote arrived for a fact the store has already corroborated and
#: labelled.  Append-only stream semantics evaluate each fact exactly once
#: (Definition 1 assigns one t(f) per fact), so a late vote cannot be
#: folded in without a rebuild; it is rejected and accounted for instead.
STALE_FACT = "stale_fact"
#: A bulk import carried a fact id the store already holds.
DUPLICATE_FACT = "duplicate_fact"

#: Every reason code a reader may emit.
REASON_CODES = frozenset(
    {
        BAD_HEADER,
        BAD_VOTE_SYMBOL,
        DASH_VOTE,
        DUPLICATE_VOTE,
        CONFLICTING_VOTE,
        MISSING_FIELD,
        MALFORMED_ROW,
        BAD_TRUTH_LABEL,
        DUPLICATE_TRUTH,
        UNKNOWN_FACT,
        BAD_JSON,
        BAD_DOCUMENT,
        TRUNCATED_FILE,
        IO_ERROR,
        STALE_FACT,
        DUPLICATE_FACT,
    }
)


# ---------------------------------------------------------------------------
# Exceptions
# ---------------------------------------------------------------------------
class ResilienceError(Exception):
    """Base class of every error the resilience layer raises itself."""


class IngestError(ResilienceError, ValueError):
    """A rejected input row / document, tagged with a reason code.

    Subclasses ``ValueError`` so pre-resilience callers (and tests) that
    matched the untyped errors keep working unchanged.

    Attributes:
        reason: machine-readable code from :data:`REASON_CODES`.
        location: where the problem is (``"line 7"``, ``"votes[f1][s2]"``).
    """

    def __init__(self, message: str, *, reason: str, location: str | None = None):
        if reason not in REASON_CODES:
            raise ValueError(f"unknown ingest reason code: {reason!r}")
        super().__init__(message)
        self.reason = reason
        self.location = location


class DuplicateVoteError(IngestError):
    """A repeated ``(source, fact)`` pair in a votes file (strict mode)."""


class CheckpointError(ResilienceError):
    """A checkpoint could not be written, read, or applied to a session."""


class FaultInjected(ResilienceError):
    """Raised by seeded fault-injection hooks (chaos tests only)."""


# ---------------------------------------------------------------------------
# Error policy
# ---------------------------------------------------------------------------
class ErrorPolicy(enum.Enum):
    """What an ingest routine does with a malformed or conflicting row."""

    #: Raise a typed :class:`IngestError` on the first bad row (default —
    #: preserves the historical fail-fast behavior).
    STRICT = "strict"
    #: Drop bad rows, counting them in the report (payload discarded).
    SKIP = "skip"
    #: Drop bad rows, keeping their payload in the report for audit.
    QUARANTINE = "quarantine"

    @classmethod
    def coerce(cls, value: "ErrorPolicy | str") -> "ErrorPolicy":
        """Accept an enum member or its string value (CLI flags)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown error policy {value!r}; expected one of "
                f"{sorted(p.value for p in cls)}"
            ) from None


# ---------------------------------------------------------------------------
# Ingest report
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class RowIssue:
    """One rejected row: where, why, and (under quarantine) what."""

    location: str
    reason: str
    message: str
    row: dict | None = None

    def to_record(self) -> dict:
        record = {
            "location": self.location,
            "reason": self.reason,
            "message": self.message,
        }
        if self.row is not None:
            record["row"] = self.row
        return record


@dataclasses.dataclass
class IngestReport:
    """Machine-readable account of one ingest: kept, dropped, and why.

    One report covers one input (a votes CSV, a truth CSV, a JSON
    document).  ``rows_read`` counts every data row the reader saw,
    ``rows_kept`` the ones that made it into the output structure; the
    difference is itemised in :attr:`issues`, so
    ``rows_read == rows_kept + len(issues)`` always holds for row-scoped
    rejections (file-scoped issues such as a truncation are additionally
    listed but drop no counted row).
    """

    source: str = "<memory>"
    policy: str = ErrorPolicy.STRICT.value
    rows_read: int = 0
    rows_kept: int = 0
    issues: list[RowIssue] = dataclasses.field(default_factory=list)

    @property
    def rows_dropped(self) -> int:
        return len(self.issues)

    def record(
        self,
        *,
        location: str,
        reason: str,
        message: str,
        row: dict | None = None,
    ) -> None:
        """Account for one rejected row."""
        if reason not in REASON_CODES:
            raise ValueError(f"unknown ingest reason code: {reason!r}")
        self.issues.append(
            RowIssue(location=location, reason=reason, message=message, row=row)
        )

    def reasons(self) -> dict[str, int]:
        """Issue count per reason code."""
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.reason] = counts.get(issue.reason, 0) + 1
        return counts

    def to_record(self) -> dict:
        """The ``ingest_report`` ledger payload (see :mod:`repro.obs.runlog`)."""
        return {
            "source": self.source,
            "policy": self.policy,
            "rows_read": self.rows_read,
            "rows_kept": self.rows_kept,
            "rows_dropped": self.rows_dropped,
            "reasons": self.reasons(),
            "issues": [issue.to_record() for issue in self.issues],
        }

    def summary(self) -> str:
        """One human line: ``kept 120/123 rows (2 bad_vote_symbol, 1 ...)``."""
        parts = ", ".join(
            f"{count} {reason}" for reason, count in sorted(self.reasons().items())
        )
        tail = f" ({parts})" if parts else ""
        return f"{self.source}: kept {self.rows_kept}/{self.rows_read} rows{tail}"
