"""Seeded, deterministic fault injection for the chaos test suite.

Every recovery path in the resilience layer is proven by injecting the
fault it recovers from: corrupted vote symbols, duplicated and conflicting
rows, truncated files, I/O errors mid-read, and NaN-poisoned trust.  A
:class:`FaultPlan` owns a seeded RNG, so a chaos test names a seed and gets
the exact same faults every run — flaky-by-construction inputs, never
flaky tests.  Each injected fault is appended to :attr:`FaultPlan.manifest`
so a test can assert that the ingest report accounts for *every* fault the
plan planted, not merely "some".

The module also ships three misbehaving corroborators (always-raising,
NaN-diverging, budget-busting slow) used to exercise the sweep supervisor
in :func:`repro.eval.harness.run_methods`.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.result import CorroborationResult, Corroborator
from repro.model.dataset import Dataset
from repro.resilience.errors import FaultInjected

#: Junk replacement tokens for corrupted vote symbols — none parse as a
#: legal vote (``T``/``F``) and none are the omission dash.
_BAD_SYMBOLS = ("X", "yes", "7", "??", "t rue")


@dataclasses.dataclass(frozen=True)
class InjectedFault:
    """One planted fault: what was injected and where."""

    kind: str
    location: str
    detail: str


class FlakyTextHandle:
    """A text handle that raises ``OSError`` after ``fail_after`` characters.

    Simulates a network filesystem dropping mid-read: the reader sees valid
    prefix lines, then an I/O error.  Supports the iteration protocol that
    ``csv`` readers use, plus ``read``/``readline`` for JSON loaders.
    """

    name = "<flaky>"

    def __init__(self, text: str, fail_after: int) -> None:
        self._text = text
        self._fail_after = fail_after
        self._position = 0

    def _check(self) -> None:
        if self._position >= self._fail_after:
            raise OSError("injected I/O fault: connection dropped mid-read")

    def read(self, size: int = -1) -> str:
        self._check()
        if size is None or size < 0:
            size = len(self._text) - self._position
        chunk = self._text[self._position : self._position + size]
        self._position += len(chunk)
        return chunk

    def readline(self) -> str:
        self._check()
        end = self._text.find("\n", self._position)
        if end == -1:
            line = self._text[self._position :]
        else:
            line = self._text[self._position : end + 1]
        self._position += len(line)
        return line

    def __iter__(self) -> "FlakyTextHandle":
        return self

    def __next__(self) -> str:
        line = self.readline()
        if not line:
            raise StopIteration
        return line

    def close(self) -> None:
        pass


class FaultPlan:
    """Deterministic injector of input faults, keyed by a seed.

    All choice points (which rows to corrupt, which junk symbol to use,
    where to truncate) draw from one ``numpy`` generator, so the same seed
    yields byte-identical corrupted inputs.  Every injection is logged in
    :attr:`manifest`.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.manifest: list[InjectedFault] = []

    def _note(self, kind: str, location: str, detail: str) -> None:
        self.manifest.append(InjectedFault(kind=kind, location=location, detail=detail))

    def faults_of_kind(self, kind: str) -> list[InjectedFault]:
        return [fault for fault in self.manifest if fault.kind == kind]

    # ------------------------------------------------------------------
    # CSV corruption
    # ------------------------------------------------------------------
    def corrupt_votes_csv(
        self,
        text: str,
        *,
        bad_symbols: int = 0,
        dash_votes: int = 0,
        blank_fields: int = 0,
        duplicates: int = 0,
        conflicts: int = 0,
    ) -> str:
        """Plant faults into a ``fact,source,vote`` CSV; returns new text.

        In-place faults (bad symbols, dashes, blanked fields) mutate
        distinct existing data rows; duplicates and conflicts append copies
        of existing rows at the end of the file.  Line numbers in the
        manifest are 1-based file lines (header = line 1), matching the
        locations the ingest readers report.
        """
        lines = text.strip("\n").split("\n")
        header, rows = lines[0], lines[1:]
        in_place = bad_symbols + dash_votes + blank_fields
        if in_place > len(rows):
            raise ValueError("not enough rows to corrupt")
        chosen = self._rng.choice(len(rows), size=in_place, replace=False)
        cursor = 0

        def split(row: str) -> list[str]:
            return row.split(",")

        for _ in range(bad_symbols):
            index = int(chosen[cursor])
            cursor += 1
            fields = split(rows[index])
            symbol = str(self._rng.choice(_BAD_SYMBOLS))
            fields[2] = symbol
            rows[index] = ",".join(fields)
            self._note("bad_symbol", f"line {index + 2}", f"vote -> {symbol!r}")
        for _ in range(dash_votes):
            index = int(chosen[cursor])
            cursor += 1
            fields = split(rows[index])
            fields[2] = "-"
            rows[index] = ",".join(fields)
            self._note("dash_vote", f"line {index + 2}", "vote -> '-'")
        for _ in range(blank_fields):
            index = int(chosen[cursor])
            cursor += 1
            fields = split(rows[index])
            column = int(self._rng.integers(0, 2))  # blank the fact or source
            fields[column] = ""
            rows[index] = ",".join(fields)
            self._note(
                "blank_field",
                f"line {index + 2}",
                f"{'fact' if column == 0 else 'source'} -> ''",
            )
        # Appended faults copy rows that are still intact, so the original
        # stays the kept row and the appended one is the rejected duplicate.
        intact = [i for i in range(len(rows)) if i not in set(int(c) for c in chosen)]
        if duplicates + conflicts > len(intact):
            raise ValueError("not enough intact rows to duplicate")
        picked = self._rng.choice(len(intact), size=duplicates + conflicts, replace=False)
        appended: list[str] = []
        for offset in range(duplicates):
            index = intact[int(picked[offset])]
            appended.append(rows[index])
            line = 2 + len(rows) + len(appended) - 1
            self._note("duplicate_row", f"line {line}", f"copy of line {index + 2}")
        for offset in range(duplicates, duplicates + conflicts):
            index = intact[int(picked[offset])]
            fields = split(rows[index])
            fields[2] = "F" if fields[2].strip().upper() == "T" else "T"
            appended.append(",".join(fields))
            line = 2 + len(rows) + len(appended) - 1
            self._note(
                "conflicting_row", f"line {line}", f"flipped copy of line {index + 2}"
            )
        return "\n".join([header, *rows, *appended]) + "\n"

    # ------------------------------------------------------------------
    # Whole-file faults
    # ------------------------------------------------------------------
    def truncate(self, text: str, fraction: float | None = None) -> str:
        """Cut the text mid-byte-stream (defaults to a seeded fraction)."""
        if fraction is None:
            fraction = float(self._rng.uniform(0.3, 0.9))
        cut = max(1, int(len(text) * fraction))
        self._note("truncate", f"byte {cut}", f"kept {cut}/{len(text)} chars")
        return text[:cut]

    def flaky_handle(self, text: str, fail_after: int | None = None) -> FlakyTextHandle:
        """A reader over ``text`` that dies with ``OSError`` mid-read."""
        if fail_after is None:
            fail_after = int(self._rng.integers(len(text) // 4, 3 * len(text) // 4))
        self._note("io_error", f"char {fail_after}", "OSError after prefix read")
        return FlakyTextHandle(text, fail_after)

    # ------------------------------------------------------------------
    # Refresh faults (serving chaos)
    # ------------------------------------------------------------------
    def failing_refreshes(self, count: int) -> "RefreshFaults":
        """A refresh-path hook that fails the first ``count`` attempts.

        The corroboration service invokes the hook at the top of every
        refresh that has pending work (``CorroborationService(...,
        refresh_fault=hook)``); the first ``count`` invocations raise
        :class:`~repro.resilience.errors.FaultInjected` — enough
        consecutive failures trip the service's circuit breaker — and
        every later invocation is a no-op, so the breaker's half-open
        probe eventually sees a clean refresh and recovers.  Each raised
        fault is logged in :attr:`manifest`.
        """
        return RefreshFaults(self, count)

    # ------------------------------------------------------------------
    # Numeric poisoning
    # ------------------------------------------------------------------
    def nan_poison(self, values: dict, count: int = 1) -> dict:
        """Return a copy of ``values`` with ``count`` entries set to NaN."""
        keys = list(values)
        if count > len(keys):
            raise ValueError("not enough entries to poison")
        chosen = self._rng.choice(len(keys), size=count, replace=False)
        poisoned = dict(values)
        for index in chosen:
            key = keys[int(index)]
            poisoned[key] = float("nan")
            self._note("nan_poison", repr(key), "value -> nan")
        return poisoned


class RefreshFaults:
    """Callable refresh fault: raises for the first ``count`` attempts.

    Created via :meth:`FaultPlan.failing_refreshes`; called with the
    epoch the refresh would commit.  Deliberately *not* seeded beyond the
    plan that owns it — the fault schedule ("next N refreshes fail") must
    be exact so chaos runs can assert the precise breaker trajectory.
    """

    def __init__(self, plan: FaultPlan, count: int) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        self._plan = plan
        self.remaining = count
        self.attempts = 0

    def __call__(self, epoch: int) -> None:
        self.attempts += 1
        if self.remaining <= 0:
            return
        self.remaining -= 1
        self._plan._note(
            "refresh_fault", f"epoch {epoch}", f"attempt {self.attempts} failed"
        )
        raise FaultInjected(
            f"injected refresh fault (attempt {self.attempts}, "
            f"{self.remaining} remaining)"
        )


# ---------------------------------------------------------------------------
# Misbehaving corroborators (supervisor test doubles)
# ---------------------------------------------------------------------------
class FailingCorroborator(Corroborator):
    """Raises on every run — the simplest sweep-isolation case."""

    def __init__(self, name: str = "Failing", message: str = "injected failure"):
        self.name = name
        self._message = message

    def run(self, dataset: Dataset) -> CorroborationResult:
        raise FaultInjected(self._message)


class DivergingCorroborator(Corroborator):
    """Produces NaN trust after a few iterations — a diverging fixpoint.

    With an active in-run guard the NaN surfaces in an ``iteration``
    record's ``max_trust_delta`` and the guard aborts mid-run; without one,
    the returned result carries NaN trust for the post-run watchdog to
    catch.  Probabilities stay in ``[0, 1]`` (a NaN probability would be
    rejected by :class:`~repro.core.result.CorroborationResult` itself).
    """

    def __init__(self, iterations: int = 5, poison_after: int = 2):
        self.name = "Diverging"
        self._iterations = iterations
        self._poison_after = poison_after

    def run(self, dataset: Dataset) -> CorroborationResult:
        matrix = dataset.matrix
        trust = {source: 0.8 for source in matrix.sources}
        for iteration in range(self._iterations):
            delta = 0.1 if iteration < self._poison_after else float("nan")
            if iteration >= self._poison_after:
                trust = {source: float("nan") for source in matrix.sources}
            if self.obs.enabled:
                self.obs.runlog.emit(
                    "iteration",
                    method=self.name,
                    iteration=iteration,
                    max_trust_delta=delta,
                    converged=False,
                )
        probabilities = {fact: 0.5 for fact in matrix.facts}
        return self._result(probabilities, trust, iterations=self._iterations)


class SlowCorroborator(Corroborator):
    """Sleeps per iteration — exists to bust wall-clock budgets."""

    def __init__(self, iterations: int = 50, sleep_s: float = 0.05):
        self.name = "Slow"
        self._iterations = iterations
        self._sleep_s = sleep_s

    def run(self, dataset: Dataset) -> CorroborationResult:
        matrix = dataset.matrix
        for iteration in range(self._iterations):
            time.sleep(self._sleep_s)
            if self.obs.enabled:
                self.obs.runlog.emit(
                    "iteration", method=self.name, iteration=iteration
                )
        probabilities = {fact: 1.0 for fact in matrix.facts}
        trust = {source: 0.8 for source in matrix.sources}
        return self._result(probabilities, trust, iterations=self._iterations)
