"""BayesEstimate — the Latent Truth Model of Zhao et al. (PVLDB 2012).

A Bayesian graphical model with **two-sided** source errors: each source s
has a false-positive rate φ0(s) ~ Beta(α0) (probability of affirming a
false fact) and a sensitivity φ1(s) ~ Beta(α1) (probability of affirming a
true fact); each fact's latent truth t(f) ~ Bernoulli(p), p ~ Beta(β).
An observed T vote is o = 1, an F vote is o = 0; a missing vote is not an
observation.

Inference is collapsed Gibbs sampling over the latent truths, with the
source error rates and the truth prior integrated out.  The per-fact truth
probability is the posterior mean of t(f) over the retained samples.

The paper (Section 6.1.1) runs this method with a strong
high-precision / low-recall prior: α0 = (100, 10000) — prior pseudo-counts
of 100 false positives vs 10000 true negatives, i.e. FPR ≈ 1% — and
α1 = (50, 50) (sensitivity 0.5), β = (10, 10).  On affirmative-dominated
data that prior makes every T vote near-incontrovertible evidence, which is
precisely why the method labels everything true there (Section 2.2).

The reported per-source trust score is the source's estimated *precision*
(the paper defines trustworthiness as precision, Section 3.1): the mean
posterior truth probability of the facts the source affirmed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import CorroborationResult, Corroborator
from repro.model.dataset import Dataset
from repro.model.matrix import FactId
from repro.model.votes import Vote

#: Paper priors (Section 6.1.1).  Tuples are (pseudo-count of o=1,
#: pseudo-count of o=0) given the latent truth value.
PAPER_ALPHA_FALSE = (100.0, 10_000.0)
PAPER_ALPHA_TRUE = (50.0, 50.0)
PAPER_BETA = (10.0, 10.0)


class BayesEstimate(Corroborator):
    """Latent Truth Model with collapsed Gibbs sampling.

    Args:
        alpha_false: Beta pseudo-counts (affirmed, denied) for *false* facts
            — controls the false-positive-rate prior.
        alpha_true: Beta pseudo-counts (affirmed, denied) for *true* facts
            — controls the sensitivity prior.
        beta: Beta pseudo-counts (true, false) of the truth prior.
        burn_in: discarded initial Gibbs sweeps.
        samples: retained sweeps used for the posterior mean.
        seed: RNG seed; Gibbs sampling is stochastic, fix for reproducibility.
    """

    name = "BayesEstimate"

    def __init__(
        self,
        alpha_false: tuple[float, float] = PAPER_ALPHA_FALSE,
        alpha_true: tuple[float, float] = PAPER_ALPHA_TRUE,
        beta: tuple[float, float] = PAPER_BETA,
        burn_in: int = 30,
        samples: int = 70,
        seed: int = 7,
    ) -> None:
        for name, (a, b) in (
            ("alpha_false", alpha_false),
            ("alpha_true", alpha_true),
            ("beta", beta),
        ):
            if a <= 0 or b <= 0:
                raise ValueError(f"{name} pseudo-counts must be positive, got {(a, b)}")
        if burn_in < 0 or samples < 1:
            raise ValueError("burn_in must be >= 0 and samples >= 1")
        self.alpha_false = alpha_false
        self.alpha_true = alpha_true
        self.beta = beta
        self.burn_in = burn_in
        self.samples = samples
        self.seed = seed

    def run(self, dataset: Dataset) -> CorroborationResult:
        matrix = dataset.matrix
        facts = matrix.facts
        sources = matrix.sources
        source_index = {s: i for i, s in enumerate(sources)}
        num_sources = len(sources)

        # Per-fact observation list: (source index, observation in {0, 1}).
        observations: list[list[tuple[int, int]]] = []
        for fact in facts:
            obs = [
                (source_index[s], 1 if v is Vote.TRUE else 0)
                for s, v in matrix.votes_on(fact).items()
            ]
            observations.append(obs)

        rng = np.random.default_rng(self.seed)
        # Initial assignment: majority of informative votes (ties -> true).
        assignment = np.empty(len(facts), dtype=bool)
        for fi, obs in enumerate(observations):
            affirmed = sum(o for _, o in obs)
            assignment[fi] = not obs or affirmed * 2 >= len(obs)

        # Collapsed counts: counts[t][o][s] = number of votes with
        # observation o cast by source s on facts currently assigned t.
        counts = np.zeros((2, 2, num_sources))
        truth_counts = np.array([0.0, 0.0])  # [false, true]
        for fi, obs in enumerate(observations):
            t = int(assignment[fi])
            truth_counts[t] += 1
            for si, o in obs:
                counts[t, o, si] += 1

        alpha = (self.alpha_false, self.alpha_true)
        alpha_sums = (sum(self.alpha_false), sum(self.alpha_true))
        beta_false, beta_true = self.beta[1], self.beta[0]

        truth_accumulator = np.zeros(len(facts))
        total_sweeps = self.burn_in + self.samples
        for sweep in range(total_sweeps):
            uniforms = rng.random(len(facts))
            for fi, obs in enumerate(observations):
                t_old = int(assignment[fi])
                truth_counts[t_old] -= 1
                for si, o in obs:
                    counts[t_old, o, si] -= 1

                log_odds = math.log(
                    (beta_true + truth_counts[1]) / (beta_false + truth_counts[0])
                )
                for si, o in obs:
                    # o index 1 = affirmed, 0 = denied; alpha tuples are
                    # (affirmed, denied) so alpha[t][1 - o] is the matching
                    # pseudo-count.
                    num_true = alpha[1][1 - o] + counts[1, o, si]
                    den_true = alpha_sums[1] + counts[1, :, si].sum()
                    num_false = alpha[0][1 - o] + counts[0, o, si]
                    den_false = alpha_sums[0] + counts[0, :, si].sum()
                    log_odds += math.log(num_true / den_true)
                    log_odds -= math.log(num_false / den_false)

                p_true = 1.0 / (1.0 + math.exp(-log_odds))
                t_new = int(uniforms[fi] < p_true)
                assignment[fi] = bool(t_new)
                truth_counts[t_new] += 1
                for si, o in obs:
                    counts[t_new, o, si] += 1
            if sweep >= self.burn_in:
                truth_accumulator += assignment

        posterior = truth_accumulator / self.samples
        probabilities: dict[FactId, float] = {
            fact: float(p) for fact, p in zip(facts, posterior)
        }
        trust = self._source_precision(dataset, probabilities)
        return self._result(probabilities, trust, iterations=total_sweeps)

    def _source_precision(
        self, dataset: Dataset, probabilities: dict[FactId, float]
    ) -> dict[str, float]:
        """Posterior precision of each source's affirmative votes."""
        trust: dict[str, float] = {}
        for source in dataset.matrix.sources:
            affirmed = [
                probabilities[f]
                for f, v in dataset.matrix.votes_by(source).items()
                if v is Vote.TRUE
            ]
            trust[source] = float(np.mean(affirmed)) if affirmed else 0.5
        return trust
