"""TruthFinder — Yin, Han & Yu (KDD 2007 / TKDE 2008).

The classic pseudo-probabilistic truth-discovery fixpoint, included as an
extension comparator (cited in the paper's related work, Section 7).

Each source has a trustworthiness t(s); its *trustworthiness score* is
τ(s) = −ln(1 − t(s)), interpreted as the log-odds weight of its votes.  In
the boolean setting a fact's two options — "true" and "false" — compete:
the confidence score of each option is the sum of the τ of the sources
voting for it, and the fact probability is a damped sigmoid of the
difference.  Source trust is then re-estimated as the average probability
of the options the source voted for.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.arrays import GroupArrays
from repro.core.result import CorroborationResult, Corroborator
from repro.model.dataset import Dataset

#: Trust is clipped below 1 so that τ = −ln(1 − t) stays finite.
_TRUST_CEILING = 1.0 - 1e-9


class TruthFinder(Corroborator):
    """TruthFinder adapted to boolean facts.

    Args:
        initial_trust: t0(s) for every source.
        dampening: γ — the sigmoid dampening factor of the original paper
            (their ρ·γ product; 0.3 is the value commonly used).
        max_iterations: safety cap.
        tolerance: convergence threshold on the trust vector.
    """

    name = "TruthFinder"

    def __init__(
        self,
        initial_trust: float = 0.9,
        dampening: float = 0.3,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
    ) -> None:
        if not 0.0 < initial_trust < 1.0:
            raise ValueError(f"initial_trust must be in (0, 1), got {initial_trust}")
        if dampening <= 0:
            raise ValueError(f"dampening must be positive, got {dampening}")
        self.initial_trust = initial_trust
        self.dampening = dampening
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def run(self, dataset: Dataset) -> CorroborationResult:
        arrays = GroupArrays.from_dataset(dataset)
        trust = np.full(arrays.num_sources, self.initial_trust)
        has_votes = arrays.source_has_votes()
        vote_weight = arrays.voted * arrays.sizes[:, None]
        total_votes = vote_weight.sum(axis=0)

        probs = np.full(arrays.num_groups, 0.5)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            probs = self._fact_step(arrays, trust)
            # Source step: average probability of the option each vote
            # backed (T vote backs "true" — probability p; F vote backs
            # "false" — probability 1 − p), weighted by group sizes.
            backed = (
                arrays.affirm * probs[:, None]
                + arrays.deny * (1.0 - probs)[:, None]
            ) * arrays.sizes[:, None]
            with np.errstate(divide="ignore", invalid="ignore"):
                new_trust = backed.sum(axis=0) / total_votes
            new_trust = np.where(has_votes, new_trust, self.initial_trust)
            new_trust = np.clip(new_trust, 0.0, _TRUST_CEILING)
            delta = float(np.max(np.abs(new_trust - trust)))
            converged = delta < self.tolerance
            if self.obs.enabled:
                self.obs.metrics.inc(f"baseline.{self.name}.iterations")
                self.obs.runlog.emit(
                    "iteration",
                    method=self.name,
                    iteration=iterations,
                    max_trust_delta=delta,
                    converged=converged,
                )
            trust = new_trust
            if converged:
                break
        probs = self._fact_step(arrays, trust)
        return self._result(
            probabilities=arrays.fact_probabilities(probs),
            trust=arrays.trust_mapping(trust),
            iterations=iterations,
        )

    def _fact_step(self, arrays: GroupArrays, trust: np.ndarray) -> np.ndarray:
        tau = -np.log(np.clip(1.0 - trust, 1e-12, 1.0))
        score_true = arrays.affirm @ tau
        score_false = arrays.deny @ tau
        probs = 1.0 / (1.0 + np.exp(-self.dampening * (score_true - score_false)))
        # Facts with no votes carry no evidence either way.
        return np.where(arrays.degree > 0, probs, 0.5)


def trustworthiness_score(trust: float) -> float:
    """τ(s) = −ln(1 − t(s)) — exposed for tests and documentation."""
    if not 0.0 <= trust < 1.0:
        raise ValueError(f"trust must be in [0, 1), got {trust}")
    return -math.log(1.0 - trust)
