"""TwoEstimate — Galland et al. (WSDM 2010), as used in the paper.

The algorithm alternates two averaging steps until a fixpoint:

* fact step (Corrob, Equation 6): σ(f) = mean over f's voters of the trust
  value for T votes and its complement for F votes;
* source step (Update, Equation 7): σ(s) = fraction of s's votes that agree
  with the facts' current values.

To guarantee convergence the variant this paper analyses (Section 2.1)
"normalizes the probability of a restaurant … to 1 if it is greater than or
equal to 0.5" — i.e. fact probabilities are **rounded** to {0, 1} before
they feed back into the source step.  That rounding is exactly what makes
the method collapse on affirmative-only data: after one iteration every
T-only fact is a certain truth and every source looks near-perfect.  The
original Galland et al. formulation instead linearly rescales values each
iteration; both are available through ``normalization``.

The reported trust scores are the final (un-rounded) agreement fractions —
this reproduces the paper's {1, 1, 0.8, 0.9, 1} on the motivating example —
and the reported probabilities are the final fact step's raw averages.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrays import GroupArrays
from repro.core.result import CorroborationResult, Corroborator
from repro.core.scoring import DEFAULT_TRUST
from repro.model.dataset import Dataset

#: Hard iteration cap; the rounded variant converges in a handful of
#: iterations, the rescaled variant can oscillate on adversarial inputs.
MAX_ITERATIONS = 200


def rescale_unit(values: np.ndarray) -> np.ndarray:
    """Affine rescale onto [0, 1] (Galland-style normalisation).

    Degenerate (constant) vectors are returned unchanged — rescaling them
    would be undefined and they are already a fixpoint.
    """
    if values.size == 0:
        return values
    lo = float(values.min())
    hi = float(values.max())
    if hi - lo < 1e-12:
        return values
    return (values - lo) / (hi - lo)


class TwoEstimate(Corroborator):
    """Iterative single-value-trust corroboration.

    Args:
        default_trust: initial trust score of every source.
        normalization: ``"round"`` (the variant the paper analyses) or
            ``"rescale"`` (Galland et al.'s linear normalisation).
        max_iterations: safety cap on the number of iterations.
    """

    name = "TwoEstimate"

    def __init__(
        self,
        default_trust: float = DEFAULT_TRUST,
        normalization: str = "round",
        max_iterations: int = MAX_ITERATIONS,
    ) -> None:
        if normalization not in {"round", "rescale"}:
            raise ValueError(
                f"normalization must be 'round' or 'rescale', got {normalization!r}"
            )
        self.default_trust = default_trust
        self.normalization = normalization
        self.max_iterations = max_iterations

    def run(self, dataset: Dataset) -> CorroborationResult:
        arrays = GroupArrays.from_dataset(dataset)
        trust = np.full(arrays.num_sources, self.default_trust)
        has_votes = arrays.source_has_votes()
        vote_weight = arrays.voted * arrays.sizes[:, None]
        total_votes = vote_weight.sum(axis=0)

        previous_labels: np.ndarray | None = None
        probs = np.full(arrays.num_groups, self.default_trust)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            probs = self._fact_step(arrays, trust)
            labels = probs >= 0.5
            feedback = labels.astype(float) if self.normalization == "round" else probs
            # Agreement mass: T votes contribute the fact value, F votes its
            # complement, weighted by group size.
            agreement = (
                arrays.affirm * feedback[:, None]
                + arrays.deny * (1.0 - feedback)[:, None]
            ) * arrays.sizes[:, None]
            with np.errstate(divide="ignore", invalid="ignore"):
                new_trust = agreement.sum(axis=0) / total_votes
            new_trust = np.where(has_votes, new_trust, self.default_trust)
            if self.normalization == "rescale":
                new_trust = rescale_unit(new_trust)
            converged = (
                previous_labels is not None
                and np.array_equal(labels, previous_labels)
                and np.allclose(new_trust, trust, atol=1e-9)
            )
            if self.obs.enabled:
                self._observe_iteration(
                    iterations, labels, previous_labels, new_trust, trust, converged
                )
            trust = new_trust
            previous_labels = labels
            if converged:
                break
        probs = self._fact_step(arrays, trust)
        return self._result(
            probabilities=arrays.fact_probabilities(probs),
            trust=arrays.trust_mapping(trust),
            iterations=iterations,
        )

    def _fact_step(self, arrays: GroupArrays, trust: np.ndarray) -> np.ndarray:
        numerator = arrays.affirm @ trust + arrays.deny @ (1.0 - trust)
        with np.errstate(divide="ignore", invalid="ignore"):
            probs = numerator / arrays.degree
        return np.where(arrays.degree > 0, probs, self.default_trust)

    def _observe_iteration(
        self,
        iteration: int,
        labels: np.ndarray,
        previous_labels: np.ndarray | None,
        new_trust: np.ndarray,
        trust: np.ndarray,
        converged: bool,
    ) -> None:
        """Per-iteration convergence read-out (metrics + ledger, read-only)."""
        obs = self.obs
        flips = (
            int(labels.size)
            if previous_labels is None
            else int(np.count_nonzero(labels != previous_labels))
        )
        delta = float(np.max(np.abs(new_trust - trust))) if trust.size else 0.0
        obs.metrics.inc(f"baseline.{self.name}.iterations")
        obs.runlog.emit(
            "iteration",
            method=self.name,
            iteration=iteration,
            label_flips=flips,
            max_trust_delta=delta,
            converged=converged,
        )
