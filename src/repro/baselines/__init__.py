"""Baseline and comparator corroboration methods.

The paper's comparison set: :class:`Voting`, :class:`Counting`,
:class:`TwoEstimate`, :class:`ThreeEstimate`, :class:`BayesEstimate`.
Extension comparators from the related work: :class:`Cosine`,
:class:`TruthFinder`, :class:`AvgLog`, :class:`Invest`,
:class:`PooledInvest`.
"""

from repro.baselines.bayesestimate import BayesEstimate
from repro.baselines.bayesestimate_fast import BayesEstimateFast
from repro.baselines.cosine import Cosine
from repro.baselines.pasternack import AvgLog, Invest, PooledInvest
from repro.baselines.threeestimate import ThreeEstimate
from repro.baselines.truthfinder import TruthFinder
from repro.baselines.twoestimate import TwoEstimate
from repro.baselines.voting import Counting, Voting

__all__ = [
    "AvgLog",
    "BayesEstimate",
    "BayesEstimateFast",
    "Cosine",
    "Counting",
    "Invest",
    "PooledInvest",
    "ThreeEstimate",
    "TruthFinder",
    "TwoEstimate",
    "Voting",
]
