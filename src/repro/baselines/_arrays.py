"""Backwards-compatible shim — the dense group arrays moved to core.

:class:`~repro.core.arrays.GroupArrays` started life here as a private
helper of the iterative baselines; once the incremental algorithm's array
engine began sharing it, it was promoted to :mod:`repro.core.arrays`
(which also made construction array-native and cached per matrix).  This
module remains only so external code importing the old path keeps working.
"""

from __future__ import annotations

from repro.core.arrays import GroupArrays

__all__ = ["GroupArrays"]
