"""Shared dense group-level arrays for the iterative baselines.

TwoEstimate / ThreeEstimate / Cosine score every fact from who voted and
how, so facts with identical vote signatures are interchangeable.  The
iterative baselines therefore run over *fact groups* (cf.
:mod:`repro.core.fact_groups`) with group sizes as weights, which turns each
iteration into a handful of small dense matrix products — the restaurant
dataset collapses from ~37k facts to a few hundred groups.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.fact_groups import FactGroup, group_facts
from repro.model.dataset import Dataset
from repro.model.matrix import FactId, SourceId
from repro.model.votes import Vote


@dataclasses.dataclass
class GroupArrays:
    """Dense incidence matrices of the fact groups of a dataset.

    Attributes:
        groups: the fact groups, aligned with the array rows.
        sources: source ids, aligned with the array columns.
        affirm: affirm[g, s] == 1 iff source s casts a T vote in group g.
        deny: deny[g, s] == 1 iff source s casts an F vote in group g.
        voted: affirm + deny.
        degree: number of voters per group (row sum of ``voted``).
        sizes: number of facts per group.
    """

    groups: list[FactGroup]
    sources: list[SourceId]
    affirm: np.ndarray
    deny: np.ndarray
    voted: np.ndarray
    degree: np.ndarray
    sizes: np.ndarray

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "GroupArrays":
        groups = group_facts(dataset.matrix)
        sources = dataset.matrix.sources
        source_index = {s: i for i, s in enumerate(sources)}
        affirm = np.zeros((len(groups), len(sources)))
        deny = np.zeros((len(groups), len(sources)))
        for gi, group in enumerate(groups):
            for source, symbol in group.signature:
                if symbol == Vote.TRUE.value:
                    affirm[gi, source_index[source]] = 1.0
                else:
                    deny[gi, source_index[source]] = 1.0
        voted = affirm + deny
        return cls(
            groups=groups,
            sources=sources,
            affirm=affirm,
            deny=deny,
            voted=voted,
            degree=voted.sum(axis=1),
            sizes=np.array([g.size for g in groups], dtype=float),
        )

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def num_sources(self) -> int:
        return len(self.sources)

    def fact_probabilities(self, group_probs: np.ndarray) -> dict[FactId, float]:
        """Expand per-group probabilities back to a per-fact mapping."""
        probabilities: dict[FactId, float] = {}
        for group, prob in zip(self.groups, group_probs):
            value = float(prob)
            for fact in group.facts:
                probabilities[fact] = value
        return probabilities

    def trust_mapping(self, trust: np.ndarray) -> dict[SourceId, float]:
        """Per-source trust vector as a source-id keyed mapping."""
        return {s: float(t) for s, t in zip(self.sources, trust)}

    def source_has_votes(self) -> np.ndarray:
        """Boolean mask of sources that cast at least one vote."""
        return (self.voted * self.sizes[:, None]).sum(axis=0) > 0
