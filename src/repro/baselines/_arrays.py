"""Backwards-compatible shim — the dense group arrays moved to core.

:class:`~repro.core.arrays.GroupArrays` started life here as a private
helper of the iterative baselines; once the incremental algorithm's array
engine began sharing it, it was promoted to :mod:`repro.core.arrays`
(which also made construction array-native and cached per matrix).  This
module remains only so external code importing the old path keeps working;
importing it raises a :class:`DeprecationWarning` and it will be removed
in a future release — import from :mod:`repro.core.arrays` instead.
"""

from __future__ import annotations

import warnings

from repro.core.arrays import GroupArrays

warnings.warn(
    "repro.baselines._arrays is deprecated; import GroupArrays from "
    "repro.core.arrays instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["GroupArrays"]
