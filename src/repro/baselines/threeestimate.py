"""ThreeEstimate — Galland et al.'s difficulty-aware variant.

3-Estimates extends 2-Estimates with a per-fact *error factor* ε(f): "how
difficult each statement is in terms of the level of disagreement" (paper
Section 7).  We model the probability that a source s votes correctly on a
fact f as

    φ(s, f) = 1 − ε(f) · (1 − θ(s))

so a perfectly easy fact (ε = 0) is answered correctly by everyone and a
maximally hard one (ε = 1) is answered correctly with probability θ(s).
The three estimates are iterated from the residual identity
``error(s, f) ≈ ε(f) · (1 − θ(s))``:

* fact value: mean over voters of φ for T votes / 1 − φ for F votes,
  rounded to a label;
* fact difficulty: ε(f) = mean over voters of error(s, f) / (1 − θ(s));
* source trust: θ(s) = 1 − mean over facts of error(s, f) / ε(f);

with divisions clamped away from zero and results clipped into [0, 1].
The EDBT paper does not restate Galland et al.'s exact update formulas;
this reconstruction preserves the property it relies on (Section 2.1,
footnote 3): **on affirmative-only data ThreeEstimate degenerates to
TwoEstimate** — when every vote agrees with every label, all errors are 0,
every ε collapses to 0 and every θ to 1, exactly TwoEstimate's fixpoint.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrays import GroupArrays
from repro.core.result import CorroborationResult, Corroborator
from repro.core.scoring import DEFAULT_TRUST
from repro.model.dataset import Dataset

#: Clamp for the ε and (1 − θ) divisors, preventing blow-ups on perfectly
#: easy facts / perfectly good sources.
_EPSILON_FLOOR = 0.05


class ThreeEstimate(Corroborator):
    """Iterative corroboration with per-fact difficulty estimates.

    Args:
        default_trust: initial θ(s) for every source.
        initial_difficulty: initial ε(f) for every fact group.
        max_iterations: safety cap.
    """

    name = "ThreeEstimate"

    def __init__(
        self,
        default_trust: float = DEFAULT_TRUST,
        initial_difficulty: float = 0.5,
        max_iterations: int = 200,
    ) -> None:
        if not 0.0 <= initial_difficulty <= 1.0:
            raise ValueError(
                f"initial_difficulty must be in [0, 1], got {initial_difficulty}"
            )
        self.default_trust = default_trust
        self.initial_difficulty = initial_difficulty
        self.max_iterations = max_iterations

    def run(self, dataset: Dataset) -> CorroborationResult:
        arrays = GroupArrays.from_dataset(dataset)
        trust = np.full(arrays.num_sources, self.default_trust)
        difficulty = np.full(arrays.num_groups, self.initial_difficulty)
        has_votes = arrays.source_has_votes()
        vote_weight = arrays.voted * arrays.sizes[:, None]
        total_votes = vote_weight.sum(axis=0)

        previous_labels: np.ndarray | None = None
        probs = np.full(arrays.num_groups, self.default_trust)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            probs = self._fact_step(arrays, trust, difficulty)
            labels = probs >= 0.5
            # error[g, s] = 1 where s's vote in group g disagrees with the
            # group's label, 0 where it agrees, masked to actual voters.
            agree = np.where(labels[:, None], arrays.affirm, arrays.deny)
            error = arrays.voted - agree

            # ε(f): average disagreement per voter, scaled by how much of it
            # the voter's own unreliability explains.
            unreliability = np.clip(1.0 - trust, _EPSILON_FLOOR, 1.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                eps = (error / unreliability[None, :]).sum(axis=1) / arrays.degree
            difficulty = np.clip(
                np.where(arrays.degree > 0, eps, self.initial_difficulty), 0.0, 1.0
            )

            # θ(s): 1 − average error per vote, discounting errors on hard
            # facts, weighted by group sizes.
            eps_divisor = np.clip(difficulty, _EPSILON_FLOOR, 1.0)
            weighted_error = (error / eps_divisor[:, None]) * arrays.sizes[:, None]
            with np.errstate(divide="ignore", invalid="ignore"):
                new_trust = 1.0 - weighted_error.sum(axis=0) / total_votes
            new_trust = np.clip(
                np.where(has_votes, new_trust, self.default_trust), 0.0, 1.0
            )
            converged = (
                previous_labels is not None
                and np.array_equal(labels, previous_labels)
                and np.allclose(new_trust, trust, atol=1e-9)
            )
            if self.obs.enabled:
                self._observe_iteration(
                    iterations, labels, previous_labels, new_trust, trust, converged
                )
            trust = new_trust
            previous_labels = labels
            if converged:
                break
        probs = self._fact_step(arrays, trust, difficulty)
        return self._result(
            probabilities=arrays.fact_probabilities(probs),
            trust=arrays.trust_mapping(trust),
            iterations=iterations,
        )

    def _observe_iteration(
        self,
        iteration: int,
        labels: np.ndarray,
        previous_labels: np.ndarray | None,
        new_trust: np.ndarray,
        trust: np.ndarray,
        converged: bool,
    ) -> None:
        """Per-iteration convergence read-out (metrics + ledger, read-only)."""
        obs = self.obs
        flips = (
            int(labels.size)
            if previous_labels is None
            else int(np.count_nonzero(labels != previous_labels))
        )
        delta = float(np.max(np.abs(new_trust - trust))) if trust.size else 0.0
        obs.metrics.inc(f"baseline.{self.name}.iterations")
        obs.runlog.emit(
            "iteration",
            method=self.name,
            iteration=iteration,
            label_flips=flips,
            max_trust_delta=delta,
            converged=converged,
        )

    def _fact_step(
        self, arrays: GroupArrays, trust: np.ndarray, difficulty: np.ndarray
    ) -> np.ndarray:
        # φ[g, s] = 1 − ε(g)·(1 − θ(s)); contribution is φ for T votes and
        # 1 − φ for F votes.
        phi = 1.0 - difficulty[:, None] * (1.0 - trust)[None, :]
        contribution = arrays.affirm * phi + arrays.deny * (1.0 - phi)
        with np.errstate(divide="ignore", invalid="ignore"):
            probs = contribution.sum(axis=1) / arrays.degree
        return np.where(arrays.degree > 0, probs, self.default_trust)
