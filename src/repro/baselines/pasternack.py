"""AvgLog, Invest and PooledInvest — Pasternack & Roth (COLING 2010).

Extension comparators from the paper's related work (Section 7).  All three
operate over *claims*: in the boolean setting each fact contributes two
mutually-exclusive claims, "f is true" (backed by T votes) and "f is false"
(backed by F votes).  Writing T(s) for source trust, C_s for the claims of
source s and S_c for the sources of claim c:

* **AvgLog**: B(c) = Σ_{s∈S_c} T(s);
  T(s) = log(1 + |C_s|) · mean_{c∈C_s} B(c).
* **Invest**: each source invests T(s)/|C_s| in each of its claims;
  B(c) = (Σ investments)^g with growth g = 1.2; the returns are split among
  the investors proportionally to their investment.
* **PooledInvest**: like Invest, but the returned belief of a claim is
  linearly re-pooled within its mutual-exclusion set (the two claims of a
  fact), which sharpens the winner.

Trust vectors are max-normalised each iteration (the framework is defined
up to scale).  The reported fact probability is B(true) / (B(true) +
B(false)), with 0.5 when a fact has no informative votes.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrays import GroupArrays
from repro.core.result import CorroborationResult, Corroborator
from repro.model.dataset import Dataset


class _PasternackBase(Corroborator):
    """Shared iteration driver for the three operator variants."""

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-8) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def run(self, dataset: Dataset) -> CorroborationResult:
        arrays = GroupArrays.from_dataset(dataset)
        # Claims per source: every vote is one claim, weighted by group size.
        claims_per_source = (arrays.voted * arrays.sizes[:, None]).sum(axis=0)
        has_votes = claims_per_source > 0
        trust = np.ones(arrays.num_sources)

        belief_true = np.zeros(arrays.num_groups)
        belief_false = np.zeros(arrays.num_groups)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            belief_true, belief_false = self._belief_step(
                arrays, trust, claims_per_source
            )
            new_trust = self._trust_step(
                arrays, trust, belief_true, belief_false, claims_per_source
            )
            new_trust = np.where(has_votes, new_trust, 0.0)
            peak = new_trust.max(initial=0.0)
            if peak > 0:
                new_trust = new_trust / peak
            if np.max(np.abs(new_trust - trust)) < self.tolerance:
                trust = new_trust
                break
            trust = new_trust
        belief_true, belief_false = self._belief_step(arrays, trust, claims_per_source)
        total = belief_true + belief_false
        with np.errstate(divide="ignore", invalid="ignore"):
            probs = belief_true / total
        probs = np.where(total > 0, probs, 0.5)
        return self._result(
            probabilities=arrays.fact_probabilities(probs),
            trust=arrays.trust_mapping(np.clip(trust, 0.0, 1.0)),
            iterations=iterations,
        )

    def _belief_step(
        self,
        arrays: GroupArrays,
        trust: np.ndarray,
        claims_per_source: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _trust_step(
        self,
        arrays: GroupArrays,
        trust: np.ndarray,
        belief_true: np.ndarray,
        belief_false: np.ndarray,
        claims_per_source: np.ndarray,
    ) -> np.ndarray:
        raise NotImplementedError


class AvgLog(_PasternackBase):
    """Average belief of a source's claims, scaled by log claim volume."""

    name = "AvgLog"

    def _belief_step(self, arrays, trust, claims_per_source):
        return arrays.affirm @ trust, arrays.deny @ trust

    def _trust_step(self, arrays, trust, belief_true, belief_false, claims_per_source):
        backed = (
            arrays.affirm * belief_true[:, None]
            + arrays.deny * belief_false[:, None]
        ) * arrays.sizes[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            mean_belief = backed.sum(axis=0) / claims_per_source
        mean_belief = np.nan_to_num(mean_belief)
        return mean_belief * np.log1p(claims_per_source)


class Invest(_PasternackBase):
    """Sources invest trust in claims; returns grow super-linearly."""

    name = "Invest"
    growth = 1.2

    def _investments(self, arrays, trust, claims_per_source):
        with np.errstate(divide="ignore", invalid="ignore"):
            per_claim = trust / claims_per_source
        return np.nan_to_num(per_claim)

    def _belief_step(self, arrays, trust, claims_per_source):
        per_claim = self._investments(arrays, trust, claims_per_source)
        invested_true = arrays.affirm @ per_claim
        invested_false = arrays.deny @ per_claim
        return invested_true**self.growth, invested_false**self.growth

    def _trust_step(self, arrays, trust, belief_true, belief_false, claims_per_source):
        per_claim = self._investments(arrays, trust, claims_per_source)
        invested_true = arrays.affirm @ per_claim
        invested_false = arrays.deny @ per_claim
        # Each investor's return from a claim is the claim's belief times
        # its share of the total investment in that claim.
        with np.errstate(divide="ignore", invalid="ignore"):
            share_true = belief_true / invested_true
            share_false = belief_false / invested_false
        share_true = np.nan_to_num(share_true)
        share_false = np.nan_to_num(share_false)
        returns = (
            arrays.affirm * share_true[:, None] + arrays.deny * share_false[:, None]
        ) * arrays.sizes[:, None]
        return (returns * per_claim[None, :]).sum(axis=0)


class PooledInvest(Invest):
    """Invest with linear re-pooling inside each fact's exclusion set."""

    name = "PooledInvest"

    def _belief_step(self, arrays, trust, claims_per_source):
        grown_true, grown_false = super()._belief_step(
            arrays, trust, claims_per_source
        )
        per_claim = self._investments(arrays, trust, claims_per_source)
        invested_true = arrays.affirm @ per_claim
        invested_false = arrays.deny @ per_claim
        pool = invested_true + invested_false
        grown_total = grown_true + grown_false
        with np.errstate(divide="ignore", invalid="ignore"):
            pooled_true = pool * grown_true / grown_total
            pooled_false = pool * grown_false / grown_total
        return np.nan_to_num(pooled_true), np.nan_to_num(pooled_false)
