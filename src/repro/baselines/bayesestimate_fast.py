"""BayesEstimateFast — vectorised blocked-Gibbs Latent Truth Model.

The reference :class:`~repro.baselines.bayesestimate.BayesEstimate` runs
the textbook *collapsed* Gibbs sampler: facts are resampled one at a time
against leave-one-out counts, which is exact but inherently sequential —
tens of seconds on the 37k-listing crawl.  This variant trades exactness
for two orders of magnitude of speed:

* **blocked updates** — every fact is resampled against the *current*
  sweep's counts instead of leave-one-out counts.  With tens of thousands
  of observations per source, removing one fact changes the per-source
  rates by O(1/n); the stationary distribution is the same in the limit
  and indistinguishable in practice (the equivalence tests check this);
* **group-level state** — facts sharing a vote signature are exchangeable
  under the model, so the sampler tracks just the *number of true facts
  per group* and resamples it as a Binomial draw;
* **Rao-Blackwellised posterior** — the reported probability is the
  average of the per-sweep conditional P(t=1) rather than of the sampled
  0/1 assignments, which cuts the Monte-Carlo variance.

Same priors, same interface, same reported trust as the reference
implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrays import GroupArrays
from repro.baselines.bayesestimate import (
    PAPER_ALPHA_FALSE,
    PAPER_ALPHA_TRUE,
    PAPER_BETA,
)
from repro.core.result import CorroborationResult, Corroborator
from repro.model.dataset import Dataset
from repro.model.matrix import FactId
from repro.model.votes import Vote


class BayesEstimateFast(Corroborator):
    """Latent Truth Model with blocked, group-level Gibbs sampling.

    Args: identical to :class:`~repro.baselines.bayesestimate.BayesEstimate`.
    """

    name = "BayesEstimateFast"

    def __init__(
        self,
        alpha_false: tuple[float, float] = PAPER_ALPHA_FALSE,
        alpha_true: tuple[float, float] = PAPER_ALPHA_TRUE,
        beta: tuple[float, float] = PAPER_BETA,
        burn_in: int = 30,
        samples: int = 70,
        seed: int = 7,
    ) -> None:
        for name, (a, b) in (
            ("alpha_false", alpha_false),
            ("alpha_true", alpha_true),
            ("beta", beta),
        ):
            if a <= 0 or b <= 0:
                raise ValueError(f"{name} pseudo-counts must be positive, got {(a, b)}")
        if burn_in < 0 or samples < 1:
            raise ValueError("burn_in must be >= 0 and samples >= 1")
        self.alpha_false = alpha_false
        self.alpha_true = alpha_true
        self.beta = beta
        self.burn_in = burn_in
        self.samples = samples
        self.seed = seed

    def run(self, dataset: Dataset) -> CorroborationResult:
        arrays = GroupArrays.from_dataset(dataset)
        if arrays.num_groups == 0:
            return self._result({}, {s: 0.5 for s in dataset.matrix.sources})
        rng = np.random.default_rng(self.seed)

        affirm, deny = arrays.affirm, arrays.deny  # (G, S) incidence
        sizes = arrays.sizes  # facts per group
        num_facts = float(sizes.sum())

        # Initial assignment: majority of informative votes (ties -> true),
        # matching the reference sampler's initialisation.
        degree = arrays.degree
        initial_true = (affirm.sum(axis=1) * 2 >= degree) | (degree == 0)
        n_true = np.where(initial_true, sizes, 0.0)  # true facts per group

        a1_1, a1_0 = self.alpha_true  # (affirmed | true), (denied | true)
        a0_1, a0_0 = self.alpha_false
        beta_true, beta_false = self.beta
        alpha1_sum = a1_1 + a1_0
        alpha0_sum = a0_1 + a0_0

        posterior = np.zeros(arrays.num_groups)
        total_sweeps = self.burn_in + self.samples
        for sweep in range(total_sweeps):
            n_false = sizes - n_true
            # Per-source observation counts by latent truth value:
            # c[t][o][s] = votes with observation o on facts assigned t.
            c1_affirm = affirm.T @ n_true
            c1_deny = deny.T @ n_true
            c0_affirm = affirm.T @ n_false
            c0_deny = deny.T @ n_false

            total_true = float(n_true.sum())
            log_odds_prior = np.log(
                (beta_true + total_true) / (beta_false + (num_facts - total_true))
            )
            # Per-source log-likelihood-ratio weights for one affirmative /
            # one denying observation.
            w_affirm = (
                np.log(a1_1 + c1_affirm)
                - np.log(alpha1_sum + c1_affirm + c1_deny)
                - np.log(a0_1 + c0_affirm)
                + np.log(alpha0_sum + c0_affirm + c0_deny)
            )
            w_deny = (
                np.log(a1_0 + c1_deny)
                - np.log(alpha1_sum + c1_affirm + c1_deny)
                - np.log(a0_0 + c0_deny)
                + np.log(alpha0_sum + c0_affirm + c0_deny)
            )
            log_odds = log_odds_prior + affirm @ w_affirm + deny @ w_deny
            p_true = 1.0 / (1.0 + np.exp(-np.clip(log_odds, -700, 700)))
            n_true = rng.binomial(sizes.astype(int), p_true).astype(float)
            if sweep >= self.burn_in:
                posterior += p_true  # Rao-Blackwellised accumulation

        posterior /= self.samples
        probabilities: dict[FactId, float] = arrays.fact_probabilities(
            np.clip(posterior, 0.0, 1.0)
        )
        trust = self._source_precision(dataset, probabilities)
        return self._result(probabilities, trust, iterations=total_sweeps)

    def _source_precision(
        self, dataset: Dataset, probabilities: dict[FactId, float]
    ) -> dict[str, float]:
        """Posterior precision of each source's affirmative votes."""
        trust: dict[str, float] = {}
        for source in dataset.matrix.sources:
            affirmed = [
                probabilities[f]
                for f, v in dataset.matrix.votes_by(source).items()
                if v is Vote.TRUE
            ]
            trust[source] = float(np.mean(affirmed)) if affirmed else 0.5
        return trust
