"""Cosine — the third fixpoint method of Galland et al. (WSDM 2010).

Votes are encoded as ±1 (T → +1, F → −1) and fact values live in [−1, 1]:

* fact step: the value of a fact is the trust-weighted average of its
  votes;
* source step: the trust of a source is the cosine similarity between its
  vote vector and the current fact-value vector, damped towards its
  previous value by a factor η to stabilise the iteration.

Included as an extension comparator (the EDBT paper cites the Galland
family; its experiments use TwoEstimate/ThreeEstimate, Cosine participates
in our ablation bench).  Probabilities are reported as (value + 1) / 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrays import GroupArrays
from repro.core.result import CorroborationResult, Corroborator
from repro.model.dataset import Dataset


class Cosine(Corroborator):
    """Cosine-similarity fixpoint corroboration.

    Args:
        damping: η — weight of the previous trust value in the source step.
        max_iterations: safety cap.
        tolerance: convergence threshold on the trust vector.
    """

    name = "Cosine"

    def __init__(
        self,
        damping: float = 0.2,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
    ) -> None:
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must be in [0, 1), got {damping}")
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def run(self, dataset: Dataset) -> CorroborationResult:
        arrays = GroupArrays.from_dataset(dataset)
        # signed[g, s] = +1 for a T vote, −1 for an F vote, 0 otherwise.
        signed = arrays.affirm - arrays.deny
        sizes = arrays.sizes
        trust = np.full(arrays.num_sources, 0.8)
        has_votes = arrays.source_has_votes()

        values = np.zeros(arrays.num_groups)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            values = self._fact_step(arrays, signed, trust)
            # Cosine between each source's (size-weighted) vote vector and
            # the fact values, restricted to the facts it voted on.
            dot = (signed * values[:, None] * sizes[:, None]).sum(axis=0)
            vote_norm = np.sqrt((arrays.voted * sizes[:, None]).sum(axis=0))
            value_norm = np.sqrt(
                (arrays.voted * (values**2)[:, None] * sizes[:, None]).sum(axis=0)
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                cosine = dot / (vote_norm * value_norm)
            cosine = np.where(
                has_votes & (value_norm > 0), np.nan_to_num(cosine), trust
            )
            new_trust = self.damping * trust + (1.0 - self.damping) * cosine
            new_trust = np.clip(new_trust, -1.0, 1.0)
            if np.max(np.abs(new_trust - trust)) < self.tolerance:
                trust = new_trust
                break
            trust = new_trust
        values = self._fact_step(arrays, signed, trust)
        probabilities = arrays.fact_probabilities((values + 1.0) / 2.0)
        # Report trust on [0, 1] (negative cosine = worse than useless).
        trust01 = np.clip((trust + 1.0) / 2.0, 0.0, 1.0)
        return self._result(
            probabilities=probabilities,
            trust=arrays.trust_mapping(trust01),
            iterations=iterations,
        )

    def _fact_step(
        self, arrays: GroupArrays, signed: np.ndarray, trust: np.ndarray
    ) -> np.ndarray:
        weight = np.abs(trust)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = (signed @ trust) / (arrays.voted @ weight)
        return np.clip(np.nan_to_num(values), -1.0, 1.0)
