"""Vote-counting baselines (paper Section 6.1.1).

* :class:`Voting` — "considers a fact as true if there exist more sources
  reporting it true than false".  Only informative votes participate; on the
  affirmative-dominated datasets of the paper this labels nearly everything
  true (perfect recall, poor precision).
* :class:`Counting` — "assigns a true result to each fact if more than half
  the sources report it true": the denominator is *all* sources, so a
  missing vote counts against the fact.  This acts as a high support
  threshold (high precision, poor recall — paper Table 4).

Both also report a trust score per source (the agreement of the source's
votes with the method's own labels) so that they can participate in the
trust-MSE comparison.
"""

from __future__ import annotations

from repro.core.result import CorroborationResult, Corroborator
from repro.core.scoring import update_trust
from repro.model.dataset import Dataset
from repro.model.matrix import FactId
from repro.model.votes import Vote


class Voting(Corroborator):
    """Majority vote over informative votes; ties resolve to true.

    The reported probability is the affirmative fraction #T / (#T + #F);
    facts with no votes get probability 0.5 and (by the tie rule) label
    true — consistent with the paper, where unanimously silent facts do not
    occur.
    """

    name = "Voting"

    def run(self, dataset: Dataset) -> CorroborationResult:
        matrix = dataset.matrix
        probabilities: dict[FactId, float] = {}
        for fact in matrix.facts:
            votes = matrix.votes_on(fact)
            if not votes:
                probabilities[fact] = 0.5
                continue
            affirmative = sum(1 for v in votes.values() if v is Vote.TRUE)
            probabilities[fact] = affirmative / len(votes)
        labels = {f: p >= 0.5 for f, p in probabilities.items()}
        trust = update_trust(matrix, labels, default_trust=0.5)
        return self._result(probabilities, trust)


class Counting(Corroborator):
    """Strict majority over *all* sources (missing votes count against).

    A fact is true iff strictly more than half of all sources cast a T vote
    for it.  The reported probability is #T / |S|; the strict decision rule
    is carried via label overrides because ``#T / |S| == 0.5`` must decide
    *false* here, unlike the Equation 2 threshold.
    """

    name = "Counting"

    def run(self, dataset: Dataset) -> CorroborationResult:
        matrix = dataset.matrix
        num_sources = matrix.num_sources
        if num_sources == 0:
            raise ValueError("Counting requires at least one source")
        probabilities: dict[FactId, float] = {}
        overrides: dict[FactId, bool] = {}
        for fact in matrix.facts:
            affirmative = sum(
                1 for v in matrix.votes_on(fact).values() if v is Vote.TRUE
            )
            probabilities[fact] = affirmative / num_sources
            overrides[fact] = affirmative * 2 > num_sources
        trust = update_trust(matrix, overrides, default_trust=0.5)
        return self._result(probabilities, trust, label_overrides=overrides)
