"""Quickstart: corroborate the paper's motivating example (Table 1).

Five web sources list twelve restaurants; almost every statement is
affirmative, yet five of the restaurants are actually closed.  This script
runs the two classic corroborators and the paper's incremental algorithm
and prints the Table 2 comparison plus the round-by-round multi-value
trust scores that make the difference.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BayesEstimate,
    IncEstHeu,
    IncEstimate,
    TwoEstimate,
    Voting,
    evaluate_result,
    motivating_example,
    render_table,
)

def main() -> None:
    dataset = motivating_example()
    print(dataset.summary())
    print()

    methods = [
        Voting(),
        TwoEstimate(),
        BayesEstimate(burn_in=50, samples=150),
        IncEstimate(IncEstHeu()),
    ]
    rows = []
    for method in methods:
        result = method.run(dataset)
        counts = evaluate_result(result, dataset)
        rows.append(
            {
                "method": method.name,
                "precision": counts.precision,
                "recall": counts.recall,
                "accuracy": counts.accuracy,
                "false facts found": ", ".join(sorted(result.false_facts())) or "none",
            }
        )
    print(render_table(rows, title="Corroboration quality (paper Table 2)"))
    print()

    result = IncEstimate(IncEstHeu()).run(dataset)
    print("IncEstimate multi-value trust per time point (paper Figure 1):")
    trajectory_rows = []
    for time_point, vector in enumerate(result.trajectory.as_rows()):
        trajectory_rows.append({"t": time_point, **vector})
    print(render_table(trajectory_rows, float_digits=2))
    print()
    print(
        "Note how s4's trust collapses after the first round — that is what "
        "lets the algorithm label the s4-backed listings r6 and r12 as "
        "closed, while single-trust methods call everything open."
    )


if __name__ == "__main__":
    main()
