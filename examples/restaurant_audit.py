"""Audit a restaurant-listing crawl: find listings that are likely closed.

This is the paper's real-world scenario at full scale: 36,916 listings
aggregated from six sources, fewer than 2% of which carry an explicit
CLOSED flag.  The script corroborates the crawl with IncEstimate, shows how
each source's trust evolves (paper Figure 2(b)), compares against a simple
majority vote on the golden set (paper Table 4), and prints a sample of the
listings flagged as closed.

Run:  python examples/restaurant_audit.py
"""

from __future__ import annotations

from repro import (
    IncEstHeu,
    IncEstimate,
    Voting,
    evaluate_result,
    generate_restaurants,
    render_table,
    trust_mse_for,
)

def main() -> None:
    world = generate_restaurants()
    dataset = world.dataset
    print(dataset.summary())
    print()
    print(render_table([{"metric": "coverage", **world.coverage_row()}], float_digits=2))
    print()

    algorithm = IncEstimate(IncEstHeu())
    result = algorithm.run(dataset)
    baseline = Voting().run(dataset)

    rows = []
    for name, res in (("Voting", baseline), (algorithm.name, result)):
        counts = evaluate_result(res, dataset)
        rows.append(
            {
                "method": name,
                "precision": counts.precision,
                "recall": counts.recall,
                "accuracy": counts.accuracy,
                "f1": counts.f1,
                "trust MSE": trust_mse_for(res, dataset),
            }
        )
    print(render_table(rows, title="Golden-set quality (paper Table 4)", float_digits=3))
    print()

    print("Source trust over time (paper Figure 2(b)), sampled every 10 points:")
    trajectory = result.trajectory
    sampled = []
    for t in range(0, trajectory.num_time_points, max(1, trajectory.num_time_points // 10)):
        sampled.append({"t": t, **trajectory.at(t)})
    print(render_table(sampled, float_digits=2))
    print()

    flagged = result.false_facts()
    print(f"{len(flagged)} of {dataset.matrix.num_facts} listings flagged as closed.")
    print("Sample of flagged listings and who (still) lists them:")
    sample_rows = []
    for fact in flagged[:8]:
        votes = dataset.matrix.votes_on(fact)
        sample_rows.append(
            {
                "listing": fact,
                "P(open)": result.probability(fact),
                "votes": ", ".join(f"{s}={v}" for s, v in sorted(votes.items())),
            }
        )
    print(render_table(sample_rows, float_digits=2))


if __name__ == "__main__":
    main()
