"""Generate the full Markdown analysis report for the restaurant crawl.

Exercises the analysis layer in one shot: quality + trust tables,
probability calibration (Brier / ECE), significance of the winner over the
runner-up, multi-value trust sparklines and per-source convergence — plus
per-fact provenance for a couple of flagged listings and a source-copying
scan.

Run:  python examples/generate_report.py [output.md]
"""

from __future__ import annotations

import sys

from repro import IncEstHeu, IncEstimate, TwoEstimate, Voting, generate_restaurants
from repro.analysis import build_report, copying_pairs
from repro.core import explain, explain_source

def main() -> None:
    world = generate_restaurants(num_facts=8_000)
    dataset = world.dataset

    report = build_report(
        dataset,
        [Voting(), TwoEstimate(), IncEstimate(IncEstHeu())],
        title="Restaurant crawl corroboration report",
    )

    # Append provenance for a few flagged listings.
    result = IncEstimate(IncEstHeu()).run(dataset)
    sections = [report, "## Sample provenance", "", "```"]
    for fact in result.false_facts()[:3]:
        sections.append(explain(result, fact).render())
        sections.append("")
    for source in ("YellowPages", "MenuPages"):
        sections.append(explain_source(result, source))
        sections.append("")
    sections.append("```")

    # Source-dependence scan against the corroborated labels.
    sections += ["", "## Source-dependence scan", ""]
    suspicious = copying_pairs(dataset, labels=result.labels(), min_lift=1.5)
    if suspicious:
        for score in suspicious[:5]:
            sections.append(
                f"- {score.source_a} / {score.source_b}: "
                f"{score.shared_false} shared false listings, "
                f"lift {score.lift:.2f} over independence"
            )
    else:
        sections.append("No source pair exceeds the copying threshold.")

    text = "\n".join(sections)
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as handle:
            handle.write(text)
        print(f"report written to {sys.argv[1]}")
    else:
        print(text)


if __name__ == "__main__":
    main()
