"""The paper's opening scenario: conflicting numeric claims.

Section 1 motivates corroboration with "the total government revenue of
Japan in 2011": several aggregator sites report a stale $1.8T while the
correct $1.1T appears only in primary sources — the right answer is
out-voted.  This script models a batch of such numeric indicators with the
multi-answer machinery: candidate values are mutually exclusive answers,
careful primary sources report the correct value, and a crowd of
aggregators echoes stale variants.

It also shows a *regime boundary* the rest of this repository documents:
the fixpoint corroborators (TwoEstimate / ThreeEstimate) shine here —
plenty of conflict to learn from — while the incremental algorithm, built
for the affirmative-only regime, only matches plain voting on this small
conflict-rich task (cf. EXPERIMENTS.md E8 and docs/algorithm.md).

Run:  python examples/numeric_claims.py
"""

from __future__ import annotations

import numpy as np

from repro import IncEstHeu, IncEstimate, Voting, render_table
from repro.baselines import ThreeEstimate, TwoEstimate
from repro.model.claims import Question, QuestionSet, settle_questions

def build_statistics_world(
    num_questions: int = 120, num_sources: int = 9, seed: int = 2011
) -> QuestionSet:
    """Statistical indicators reported by primaries and aggregators.

    Three primary sources report the correct value with probability 0.9
    (else a typo); six aggregators echo one of two stale variants with
    probability 0.8 (else the correct value).  The correct value sits at a
    random position among the candidates so no method gains from
    tie-breaking order.
    """
    rng = np.random.default_rng(seed)
    questions: list[Question] = []
    roles: dict[str, tuple[str, tuple[str, str], str]] = {}
    for qi in range(num_questions):
        answers = [f"value-{j}" for j in range(4)]
        correct = answers[int(rng.integers(4))]
        others = [a for a in answers if a != correct]
        questions.append(Question(qid=f"indicator{qi}", answers=answers, correct=correct))
        roles[f"indicator{qi}"] = (correct, (others[0], others[1]), others[2])
    question_set = QuestionSet(questions)
    for si in range(num_sources):
        primary = si < 3
        name = f"{'primary' if primary else 'aggregator'}{si}"
        for question in questions:
            correct, stale, typo = roles[question.qid]
            if rng.random() > 0.75:
                continue  # source doesn't cover this indicator
            roll = rng.random()
            if primary:
                chosen = correct if roll < 0.9 else typo
            else:
                if roll < 0.8:
                    chosen = stale[0] if rng.random() < 0.5 else stale[1]
                else:
                    chosen = correct
            question_set.add_user_vote(name, question.qid, chosen)
    return question_set


def main() -> None:
    question_set = build_statistics_world()
    print(
        f"{question_set.num_questions} indicators, "
        f"{len(question_set.users)} sources; six aggregators echo stale "
        "values and out-vote three careful primaries.\n"
    )

    methods = [
        Voting(),
        TwoEstimate(),
        ThreeEstimate(),
        IncEstimate(IncEstHeu(), trust_prior_strength=0.3),
    ]
    rows = []
    for method in methods:
        verdicts = settle_questions(question_set, method)
        labelled = [v for v in verdicts.values() if v.is_correct is not None]
        accuracy = sum(v.is_correct for v in labelled) / len(labelled)
        rows.append({"method": method.name, "question accuracy": accuracy})
    print(render_table(rows, title="Who recovers the out-voted truth?"))
    print()
    print(
        "The fixpoint corroborators learn to distrust the aggregators from\n"
        "the abundant conflict and recover the out-voted values; voting\n"
        "cannot.  The incremental algorithm targets the opposite regime\n"
        "(almost no conflict) and only ties voting here — see\n"
        "docs/algorithm.md for the regime discussion.\n"
    )

    verdicts = settle_questions(question_set, TwoEstimate())
    sample = []
    for verdict in list(verdicts.values())[:6]:
        sample.append(
            {
                "indicator": verdict.qid,
                "settled": verdict.predicted,
                "margin": verdict.margin,
                "ok": bool(verdict.is_correct),
            }
        )
    print(render_table(sample, title="Sample TwoEstimate verdicts", float_digits=2))


if __name__ == "__main__":
    main()
