"""Settle multi-answer questions from crowd votes (the Table 7 scenario).

Builds a Hubdub-style prediction-market snapshot — 357 questions, 471 users
of wildly varying reliability, 830 candidate answers — encodes it into
boolean facts with mutual-exclusion votes, and compares how many answers
each corroboration method gets wrong (Galland et al.'s "number of errors").

Run:  python examples/hubdub_questions.py
"""

from __future__ import annotations

from repro import generate_hubdub_like, render_table
from repro.experiments import table7
from repro.experiments.methods import hubdub_methods
from repro.model.claims import predict_answers

def main() -> None:
    world = generate_hubdub_like()
    question_set = world.questions
    dataset = question_set.to_dataset()
    print(dataset.summary())
    print(
        f"{question_set.num_questions} questions, "
        f"{question_set.num_answer_facts} candidate answers, "
        f"{len(question_set.users)} users"
    )
    print()

    rows = table7(world)
    print(render_table(rows, title="Number of errors (paper Table 7)"))
    print()

    # Show a few questions settled by the incremental algorithm.
    method = hubdub_methods()[-1]
    result = method.run(dataset)
    predictions = predict_answers(question_set, result.probabilities)
    sample = []
    for question in question_set.questions[:8]:
        sample.append(
            {
                "question": question.qid,
                "candidates": len(question.answers),
                "predicted": predictions[question.qid],
                "correct": question.correct,
                "ok": predictions[question.qid] == question.correct,
            }
        )
    print(render_table(sample, title=f"Sample verdicts from {method.name}"))


if __name__ == "__main__":
    main()
