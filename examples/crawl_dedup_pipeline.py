"""End-to-end crawl pipeline: raw listings → dedup → corroboration.

The paper's Section 6.2.1 pipeline in miniature: simulate a messy
multi-source crawl (string variants plant duplicates), normalise addresses
and link listings with term + 3-gram cosine similarity at threshold 0.8,
turn the resolved entities into a vote matrix, and corroborate which
restaurants are actually open.

Run:  python examples/crawl_dedup_pipeline.py
"""

from __future__ import annotations

from repro import IncEstHeu, IncEstimate, Voting, evaluate_result, render_table
from repro.datasets.rawcrawl import generate_raw_crawl, generate_universe
from repro.dedup import (
    entities_to_dataset,
    pairwise_dedup_quality,
    resolve_listings,
)
from repro.model.dataset import Dataset

def main() -> None:
    universe = generate_universe(num_restaurants=600, seed=46)
    listings, truth = generate_raw_crawl(universe, seed=46)
    print(f"Crawled {len(listings)} raw listings of {len(universe)} restaurants.")
    print("Example presentation variants of one restaurant:")
    hint = listings[0].entity_hint
    for listing in [l for l in listings if l.entity_hint == hint][:4]:
        print(f"  [{listing.source:11s}] {listing.name} | {listing.address}")
    print()

    entities = resolve_listings(listings)
    quality = pairwise_dedup_quality(entities)
    print(
        f"Deduplicated to {len(entities)} entities "
        f"(pairwise precision {quality['precision']:.3f}, "
        f"recall {quality['recall']:.3f})."
    )
    print()

    sources = sorted({listing.source for listing in listings})
    resolved = entities_to_dataset(entities, sources)
    labels = {
        entity.entity_id: truth[entity.listings[0].entity_hint]
        for entity in entities
    }
    dataset = Dataset(matrix=resolved.matrix, truth=labels, name="resolved crawl")

    rows = []
    for method in (Voting(), IncEstimate(IncEstHeu(), trust_prior_strength=0.005)):
        result = method.run(dataset)
        counts = evaluate_result(result, dataset)
        rows.append(
            {
                "method": method.name,
                "precision": counts.precision,
                "recall": counts.recall,
                "accuracy": counts.accuracy,
                "closed found": len(result.false_facts()),
            }
        )
    print(render_table(rows, title="Corroboration on the resolved crawl"))


if __name__ == "__main__":
    main()
